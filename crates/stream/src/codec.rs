//! Compact binary serialisation for persistent summaries.
//!
//! The whole point of a *persistent* burstiness estimator is that the
//! summary outlives the stream: build once, store a few KB/MB, answer
//! historical queries forever. This module provides the storage format —
//! a small, versioned, little-endian binary codec implemented by every
//! summary type in the workspace (no external dependencies; the format is
//! deliberately boring).
//!
//! Framing conventions:
//! * integers are fixed-width little-endian; lengths are `u64`;
//! * floats are IEEE-754 bit patterns (`f64::to_bits`);
//! * every top-level structure (the ones users persist directly) starts
//!   with a magic tag and a format version, checked on decode;
//! * decoding is *total*: corrupted or truncated input yields a
//!   [`CodecError`], never a panic.

use std::fmt;

use crate::curve::{CornerPoint, FrequencyCurve};
use crate::time::Timestamp;

/// Errors produced while decoding a persisted summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    UnexpectedEof {
        /// What was being decoded.
        context: &'static str,
    },
    /// The magic tag of a top-level structure did not match.
    BadMagic {
        /// Expected tag.
        expected: [u8; 4],
        /// Found bytes.
        found: [u8; 4],
    },
    /// The format version is unknown to this build.
    UnsupportedVersion {
        /// Version found in the input.
        found: u16,
        /// Highest version this build reads.
        supported: u16,
    },
    /// A field held a value that violates the structure's invariants.
    Invalid {
        /// What was being decoded.
        context: &'static str,
    },
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
    /// A CRC-protected region failed its checksum — the bytes were damaged
    /// after they were written (bit rot, torn write, truncation filler).
    ChecksumMismatch {
        /// What was being decoded.
        context: &'static str,
        /// Checksum stored alongside the data.
        expected: u32,
        /// Checksum recomputed over the data as read.
        found: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            CodecError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:?}, found {found:?}")
            }
            CodecError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads ≤ {supported})")
            }
            CodecError::Invalid { context } => write!(f, "invalid value while decoding {context}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
            CodecError::ChecksumMismatch { context, expected, found } => {
                write!(
                    f,
                    "checksum mismatch in {context}: stored {expected:#010x}, computed {found:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Sequential reader over a persisted byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Unread byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The full underlying input (consumed and unconsumed alike) — lets
    /// envelope decoders checksum exactly the bytes they already parsed.
    pub fn source(&self) -> &'a [u8] {
        self.buf
    }

    /// Looks at the next `n` bytes without consuming them (format
    /// dispatch by magic/version prefix).
    pub fn peek(&self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { context });
        }
        Ok(&self.buf[self.pos..self.pos + n])
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        self.take(n, context)
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes { remaining: self.remaining() })
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a fixed 4-byte tag.
    pub fn magic(&mut self, expected: [u8; 4]) -> Result<(), CodecError> {
        let raw = self.take(4, "magic tag")?;
        let found = [raw[0], raw[1], raw[2], raw[3]];
        if found != expected {
            return Err(CodecError::BadMagic { expected, found });
        }
        Ok(())
    }

    /// Reads a `u16` version and checks it against `supported`.
    pub fn version(&mut self, supported: u16) -> Result<u16, CodecError> {
        let v = self.u16("format version")?;
        if v == 0 || v > supported {
            return Err(CodecError::UnsupportedVersion { found: v, supported });
        }
        Ok(v)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, CodecError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a single byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a length prefix, sanity-capped against the remaining input so
    /// corrupted lengths cannot trigger huge allocations.
    pub fn len(
        &mut self,
        context: &'static str,
        min_item_bytes: usize,
    ) -> Result<usize, CodecError> {
        let n = self.u64(context)? as usize;
        if min_item_bytes > 0 && n.saturating_mul(min_item_bytes) > self.remaining() {
            return Err(CodecError::Invalid { context });
        }
        Ok(n)
    }
}

/// Append-only writer (a thin veneer over `Vec<u8>` that mirrors [`Reader`]).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Finishes and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a 4-byte tag.
    pub fn magic(&mut self, tag: [u8; 4]) {
        self.buf.extend_from_slice(&tag);
    }

    /// Writes a `u16` version.
    pub fn version(&mut self, v: u16) {
        self.u16(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes raw bytes verbatim.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes a `u64` length prefix.
    pub fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Bytes written so far (e.g. to delimit a CRC-protected region).
    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Read access to everything written so far.
    pub fn written(&self) -> &[u8] {
        &self.buf
    }
}

/// Binary round-tripping for summary components.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Convenience: encode into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decode from a byte slice, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Codec for Timestamp {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.ticks());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Timestamp(r.u64("timestamp")?))
    }
}

impl Codec for CornerPoint {
    fn encode(&self, w: &mut Writer) {
        self.t.encode(w);
        w.u64(self.cum);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CornerPoint { t: Timestamp::decode(r)?, cum: r.u64("corner cum")? })
    }
}

impl Codec for FrequencyCurve {
    fn encode(&self, w: &mut Writer) {
        w.len(self.corners().len());
        for c in self.corners() {
            c.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.len("curve corner count", 16)?;
        let mut corners = Vec::with_capacity(n);
        for _ in 0..n {
            corners.push(CornerPoint::decode(r)?);
        }
        if !corners.windows(2).all(|p| p[0].t < p[1].t && p[0].cum < p[1].cum) {
            return Err(CodecError::Invalid { context: "frequency curve monotonicity" });
        }
        Ok(FrequencyCurve::from_corners(corners))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut w = Writer::new();
        w.u16(7);
        w.u32(1 << 20);
        w.u64(u64::MAX);
        w.f64(-2.5);
        w.u8(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u16("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 1 << 20);
        assert_eq!(r.u64("c").unwrap(), u64::MAX);
        assert_eq!(r.f64("d").unwrap(), -2.5);
        assert_eq!(r.u8("e").unwrap(), 9);
        r.finish().unwrap();
    }

    #[test]
    fn eof_and_trailing_are_detected() {
        let bytes = [1u8, 2, 3];
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.u64("x"), Err(CodecError::UnexpectedEof { .. })));
        let bytes = [0u8; 10];
        let mut r = Reader::new(&bytes);
        r.u64("x").unwrap();
        assert!(matches!(r.finish(), Err(CodecError::TrailingBytes { remaining: 2 })));
    }

    #[test]
    fn magic_and_version_checks() {
        let mut w = Writer::new();
        w.magic(*b"BEDX");
        w.version(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.magic(*b"OTHR"), Err(CodecError::BadMagic { .. })));
        let mut r = Reader::new(&bytes);
        r.magic(*b"BEDX").unwrap();
        assert!(matches!(
            r.version(1),
            Err(CodecError::UnsupportedVersion { found: 2, supported: 1 })
        ));
        let mut r = Reader::new(&bytes);
        r.magic(*b"BEDX").unwrap();
        assert_eq!(r.version(3).unwrap(), 2);
    }

    #[test]
    fn curve_roundtrip_and_validation() {
        let mut curve = FrequencyCurve::new();
        for t in [1u64, 4, 4, 9, 22] {
            curve.record(Timestamp(t));
        }
        let bytes = curve.to_bytes();
        let back = FrequencyCurve::from_bytes(&bytes).unwrap();
        assert_eq!(curve, back);

        // corrupt monotonicity: swap the two corner records
        let mut corrupt = bytes.clone();
        let (head, rest) = corrupt.split_at_mut(8); // length prefix
        let _ = head;
        rest[0..32].rotate_left(16);
        assert!(matches!(FrequencyCurve::from_bytes(&corrupt), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.len(usize::MAX / 2); // absurd count with no data behind it
        let bytes = w.into_bytes();
        assert!(FrequencyCurve::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_curve_roundtrip() {
        let curve = FrequencyCurve::new();
        assert_eq!(FrequencyCurve::from_bytes(&curve.to_bytes()).unwrap(), curve);
    }
}
