//! Discrete time domain: timestamps, ranges and the burst span τ.
//!
//! The paper treats time as a discrete domain ("clocks are always discretized
//! to a certain time granularity", Section III-A). We model a timestamp as an
//! unsigned number of ticks (seconds in the experiments) since the start of
//! the stream.

use std::fmt;

use crate::error::StreamError;

/// A discrete point in time, measured in ticks since the stream epoch.
///
/// The unit is workload-defined; the paper's datasets use a granularity of
/// one second, so a month-long stream spans `T = 2,678,400` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The stream epoch (t = 0).
    pub const ZERO: Timestamp = Timestamp(0);

    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// `self + delta` ticks, saturating at the maximum.
    #[inline]
    pub fn saturating_add(self, delta: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(delta))
    }

    /// `self − delta` ticks if non-negative, otherwise `None`.
    ///
    /// Burstiness at `t` needs `F(t − τ)` and `F(t − 2τ)`; when those fall
    /// before the epoch the cumulative frequency is zero, which callers
    /// express by mapping `None` to 0 (see [`FrequencyCurve::cum_at_offset`]).
    ///
    /// [`FrequencyCurve::cum_at_offset`]: crate::curve::FrequencyCurve::cum_at_offset
    #[inline]
    pub fn checked_sub(self, delta: u64) -> Option<Timestamp> {
        self.0.checked_sub(delta).map(Timestamp)
    }

    /// Ticks from `earlier` to `self`; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl From<u64> for Timestamp {
    fn from(t: u64) -> Self {
        Timestamp(t)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A closed time range `[start, end]` used for temporal substreams
/// `S[t1, t2]` and for reporting bursty periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Inclusive upper bound.
    pub end: Timestamp,
}

impl TimeRange {
    /// Creates `[start, end]`, rejecting inverted bounds.
    pub fn new(start: Timestamp, end: Timestamp) -> Result<Self, StreamError> {
        if start > end {
            return Err(StreamError::InvertedRange { start, end });
        }
        Ok(TimeRange { start, end })
    }

    /// `[0, end]` — the prefix of history up to `end`.
    pub fn up_to(end: Timestamp) -> Self {
        TimeRange { start: Timestamp::ZERO, end }
    }

    /// Whether `t` lies inside the closed range.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Number of ticks covered (inclusive), saturating.
    pub fn len_ticks(&self) -> u64 {
        self.end.0.saturating_sub(self.start.0).saturating_add(1)
    }

    /// Whether two closed ranges touch or overlap (used to merge bursty
    /// periods into maximal reported intervals).
    pub fn adjacent_or_overlapping(&self, other: &TimeRange) -> bool {
        // [a,b] and [c,d] merge when c <= b+1 (assuming a <= c).
        let (first, second) = if self.start <= other.start { (self, other) } else { (other, self) };
        second.start.0 <= first.end.0.saturating_add(1)
    }

    /// Union of two mergeable ranges.
    pub fn merge(&self, other: &TimeRange) -> TimeRange {
        TimeRange { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start.0, self.end.0)
    }
}

/// The burst span τ: the interval length over which incoming rate and its
/// acceleration are measured (Definition 1). Must be strictly positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BurstSpan(u64);

impl BurstSpan {
    /// Creates a burst span of `ticks` ticks; rejects zero.
    pub fn new(ticks: u64) -> Result<Self, StreamError> {
        if ticks == 0 {
            return Err(StreamError::ZeroBurstSpan);
        }
        Ok(BurstSpan(ticks))
    }

    /// Span length in ticks.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// One day in seconds — the τ used throughout the paper's experiments
    /// (`τ = 86,400` s, Fig. 7).
    pub const DAY_SECONDS: BurstSpan = BurstSpan(86_400);
}

impl fmt::Display for BurstSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_and_arithmetic() {
        let a = Timestamp(5);
        let b = Timestamp(9);
        assert!(a < b);
        assert_eq!(b.saturating_since(a), 4);
        assert_eq!(a.saturating_since(b), 0);
        assert_eq!(a.checked_sub(5), Some(Timestamp::ZERO));
        assert_eq!(a.checked_sub(6), None);
        assert_eq!(Timestamp::MAX.saturating_add(1), Timestamp::MAX);
    }

    #[test]
    fn time_range_rejects_inverted_bounds() {
        assert!(TimeRange::new(Timestamp(3), Timestamp(2)).is_err());
        let r = TimeRange::new(Timestamp(2), Timestamp(2)).unwrap();
        assert!(r.contains(Timestamp(2)));
        assert_eq!(r.len_ticks(), 1);
    }

    #[test]
    fn time_range_contains_is_closed() {
        let r = TimeRange::new(Timestamp(10), Timestamp(20)).unwrap();
        assert!(r.contains(Timestamp(10)));
        assert!(r.contains(Timestamp(20)));
        assert!(!r.contains(Timestamp(9)));
        assert!(!r.contains(Timestamp(21)));
    }

    #[test]
    fn adjacent_ranges_merge() {
        let a = TimeRange::new(Timestamp(0), Timestamp(4)).unwrap();
        let b = TimeRange::new(Timestamp(5), Timestamp(9)).unwrap();
        let c = TimeRange::new(Timestamp(7), Timestamp(8)).unwrap();
        let d = TimeRange::new(Timestamp(11), Timestamp(12)).unwrap();
        assert!(a.adjacent_or_overlapping(&b));
        assert!(b.adjacent_or_overlapping(&a));
        assert!(b.adjacent_or_overlapping(&c));
        assert!(!b.adjacent_or_overlapping(&d));
        assert_eq!(a.merge(&b), TimeRange::new(Timestamp(0), Timestamp(9)).unwrap());
    }

    #[test]
    fn burst_span_rejects_zero() {
        assert!(BurstSpan::new(0).is_err());
        assert_eq!(BurstSpan::new(60).unwrap().ticks(), 60);
        assert_eq!(BurstSpan::DAY_SECONDS.ticks(), 86_400);
    }
}
