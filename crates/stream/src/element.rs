//! Stream elements, raw messages, and the message→event mapping `h`.
//!
//! The paper's input is an information stream of timestamped text messages
//! `M = {(m_i, t_i)}`; a black-box function `h` maps each message to one or
//! more event identifiers, producing the event stream `S`. The mapping itself
//! is declared an orthogonal problem ("we consider it as a black box",
//! Section II-A), so we supply a simple deterministic reference
//! implementation — hashtag extraction plus a stable hash into `[0, K)` —
//! behind the [`EventMapper`] trait, which downstream users replace with
//! their own classifier or topic model.

use crate::event::EventId;
use crate::time::Timestamp;

/// One element `(a_i, t_i)` of an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamElement {
    /// Event identifier.
    pub event: EventId,
    /// Arrival timestamp.
    pub ts: Timestamp,
}

impl StreamElement {
    /// Convenience constructor.
    #[inline]
    pub fn new(event: impl Into<EventId>, ts: impl Into<Timestamp>) -> Self {
        StreamElement { event: event.into(), ts: ts.into() }
    }
}

/// A raw timestamped message `(m_i, t_i)` prior to event mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message text (tweet, microblog post, ...).
    pub text: String,
    /// Arrival timestamp.
    pub ts: Timestamp,
}

impl Message {
    /// Convenience constructor.
    pub fn new(text: impl Into<String>, ts: impl Into<Timestamp>) -> Self {
        Message { text: text.into(), ts: ts.into() }
    }
}

/// The black-box map `h : m_i → {event ids}` of Section II-A.
///
/// A message may discuss several events, in which case one
/// `(event id, t_i)` pair per event is appended to the event stream.
pub trait EventMapper {
    /// Maps a message to zero or more event ids, appending stream elements
    /// to `out`. Appending (rather than returning a `Vec`) lets hot ingest
    /// paths reuse one buffer.
    fn map_into(&self, message: &Message, out: &mut Vec<StreamElement>);

    /// Convenience wrapper returning a fresh vector.
    fn map(&self, message: &Message) -> Vec<StreamElement> {
        let mut out = Vec::new();
        self.map_into(message, &mut out);
        out
    }
}

/// Reference [`EventMapper`]: extracts `#hashtags` and hashes each into
/// `[0, K)` with a stable FNV-1a hash, so the same tag always maps to the
/// same event id across runs and machines.
///
/// Messages without hashtags map to no event (they are dropped), mirroring
/// how the paper's datasets were built from hashtag/keyword classification.
#[derive(Debug, Clone)]
pub struct HashtagMapper {
    universe_size: u32,
}

impl HashtagMapper {
    /// Creates a mapper targeting a universe of `universe_size` events.
    pub fn new(universe_size: u32) -> Self {
        assert!(universe_size > 0, "universe must be non-empty");
        HashtagMapper { universe_size }
    }

    /// Stable 64-bit FNV-1a over a lower-cased tag.
    fn fnv1a(tag: &str) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in tag.bytes() {
            let b = b.to_ascii_lowercase();
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// The event id a single tag maps to.
    pub fn event_for_tag(&self, tag: &str) -> EventId {
        EventId((Self::fnv1a(tag) % self.universe_size as u64) as u32)
    }

    /// Extracts hashtags (`#` followed by alphanumerics/underscores) from a
    /// message text.
    pub fn hashtags(text: &str) -> impl Iterator<Item = &str> {
        text.split(|c: char| c.is_whitespace()).filter_map(|word| {
            let tag = word.strip_prefix('#')?;
            let end = tag
                .char_indices()
                .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
                .map(|(i, _)| i)
                .unwrap_or(tag.len());
            if end == 0 {
                None
            } else {
                Some(&tag[..end])
            }
        })
    }
}

impl EventMapper for HashtagMapper {
    fn map_into(&self, message: &Message, out: &mut Vec<StreamElement>) {
        let before = out.len();
        for tag in Self::hashtags(&message.text) {
            let event = self.event_for_tag(tag);
            // A message mentioning the same event twice contributes one
            // element per *distinct* event, matching the paper's "add
            // multiple pairs, one for each identified event id".
            if !out[before..].iter().any(|el| el.event == event) {
                out.push(StreamElement { event, ts: message.ts });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashtag_extraction() {
        let tags: Vec<&str> =
            HashtagMapper::hashtags("LBC homeboy stoked #brasil #gold #Olympics2016!").collect();
        assert_eq!(tags, vec!["brasil", "gold", "Olympics2016"]);
    }

    #[test]
    fn hashtag_extraction_ignores_bare_hash_and_punctuation() {
        let tags: Vec<&str> = HashtagMapper::hashtags("# #a-b #_x ##double").collect();
        // "#" alone → none; "#a-b" → "a"; "#_x" → "_x"; "##double" → strip one
        // '#' then the leading '#' is not alphanumeric → none.
        assert_eq!(tags, vec!["a", "_x"]);
    }

    #[test]
    fn mapping_is_stable_and_case_insensitive() {
        let m = HashtagMapper::new(864);
        assert_eq!(m.event_for_tag("Brasil"), m.event_for_tag("brasil"));
        assert_eq!(m.event_for_tag("gold"), m.event_for_tag("gold"));
        assert!(m.event_for_tag("gold").value() < 864);
    }

    #[test]
    fn message_with_multiple_events_emits_multiple_elements() {
        let mapper = HashtagMapper::new(1 << 20); // big universe: no collisions expected
        let msg = Message::new("#soccer final! also #olympics", 42u64);
        let els = mapper.map(&msg);
        assert_eq!(els.len(), 2);
        assert!(els.iter().all(|el| el.ts == Timestamp(42)));
        assert_ne!(els[0].event, els[1].event);
    }

    #[test]
    fn duplicate_tags_in_one_message_collapse() {
        let mapper = HashtagMapper::new(1 << 20);
        let msg = Message::new("#gold #gold #GOLD", 7u64);
        assert_eq!(mapper.map(&msg).len(), 1);
    }

    #[test]
    fn message_without_tags_maps_to_nothing() {
        let mapper = HashtagMapper::new(64);
        assert!(mapper.map(&Message::new("no tags here", 1u64)).is_empty());
    }

    #[test]
    fn map_into_reuses_buffer_across_messages() {
        let mapper = HashtagMapper::new(1 << 20);
        let mut buf = Vec::new();
        mapper.map_into(&Message::new("#a", 1u64), &mut buf);
        mapper.map_into(&Message::new("#a", 2u64), &mut buf);
        // Same tag in a *different* message must not be deduplicated.
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].event, buf[1].event);
    }
}
