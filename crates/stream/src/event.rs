//! Event identifiers and the event universe Σ.

use std::fmt;

use crate::error::StreamError;

/// An event identifier `a_i ∈ [0, K)`.
///
/// The paper indexes events `1..K`; we use zero-based ids, which makes the
/// dyadic decomposition in `bed-hierarchy` (`id >> level`) natural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventId(pub u32);

impl EventId {
    /// Raw id value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// Index usable for direct addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for EventId {
    fn from(v: u32) -> Self {
        EventId(v)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The universal event space Σ with `K = |Σ|` distinct identifiers.
///
/// Carries optional human-readable labels (hashtags, topic names) so that
/// examples and experiment output can print something meaningful.
#[derive(Debug, Clone)]
pub struct EventUniverse {
    size: u32,
    labels: Vec<Option<String>>,
}

impl EventUniverse {
    /// Creates a universe of `size` events with no labels.
    pub fn new(size: u32) -> Self {
        EventUniverse { size, labels: vec![None; size as usize] }
    }

    /// Creates a universe from a list of labels (K = labels.len()).
    pub fn with_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<Option<String>> = labels.into_iter().map(|s| Some(s.into())).collect();
        EventUniverse { size: labels.len() as u32, labels }
    }

    /// Number of events K.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Validates that `event` belongs to this universe.
    pub fn check(&self, event: EventId) -> Result<EventId, StreamError> {
        if event.0 < self.size {
            Ok(event)
        } else {
            Err(StreamError::EventOutOfUniverse { event: event.0, universe: self.size })
        }
    }

    /// Label for an event, if one was registered.
    pub fn label(&self, event: EventId) -> Option<&str> {
        self.labels.get(event.index()).and_then(|l| l.as_deref())
    }

    /// Registers (or replaces) a label.
    pub fn set_label(
        &mut self,
        event: EventId,
        label: impl Into<String>,
    ) -> Result<(), StreamError> {
        self.check(event)?;
        self.labels[event.index()] = Some(label.into());
        Ok(())
    }

    /// Iterates over all event ids in the universe.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.size).map(EventId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_bounds_checking() {
        let u = EventUniverse::new(4);
        assert_eq!(u.size(), 4);
        assert!(u.check(EventId(3)).is_ok());
        assert!(matches!(
            u.check(EventId(4)),
            Err(StreamError::EventOutOfUniverse { event: 4, universe: 4 })
        ));
    }

    #[test]
    fn labels_roundtrip() {
        let mut u = EventUniverse::with_labels(["soccer", "swimming"]);
        assert_eq!(u.size(), 2);
        assert_eq!(u.label(EventId(0)), Some("soccer"));
        assert_eq!(u.label(EventId(1)), Some("swimming"));
        u.set_label(EventId(1), "natation").unwrap();
        assert_eq!(u.label(EventId(1)), Some("natation"));
        assert!(u.set_label(EventId(7), "nope").is_err());
        assert_eq!(u.label(EventId(9)), None);
    }

    #[test]
    fn iter_covers_universe() {
        let u = EventUniverse::new(3);
        let ids: Vec<u32> = u.iter().map(|e| e.value()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
