//! The naive exact baseline of Section II-B.
//!
//! Store the entire event stream (per event: its exact frequency curve) and
//! answer every query exactly:
//!
//! * POINT query — O(log n) binary search.
//! * BURSTY TIME query — burstiness is piecewise constant, changing only at
//!   the breakpoints `{t_i, t_i + τ, t_i + 2τ}` induced by the event's corner
//!   timestamps, so a linear scan over those O(n) breakpoints suffices.
//! * BURSTY EVENT query — one point query per distinct event.
//!
//! The baseline is what the sketches are measured against: it is exact but
//! costs O(n) space ("approximately 1 GB" for the paper's datasets), while
//! PBE/CM-PBE shrink this to KBs/MBs at bounded error. It also serves as the
//! ground-truth oracle for every experiment in `bed-bench`.

use std::collections::BTreeMap;

use crate::curve::FrequencyCurve;
use crate::error::StreamError;
use crate::event::EventId;
use crate::stream::EventStream;
use crate::time::{BurstSpan, TimeRange, Timestamp};
use crate::Burstiness;

/// Exact store: one frequency curve per distinct event id.
#[derive(Debug, Clone, Default)]
pub struct ExactBaseline {
    curves: BTreeMap<EventId, FrequencyCurve>,
    last_ts: Option<Timestamp>,
    elements: u64,
}

impl ExactBaseline {
    /// Empty baseline.
    pub fn new() -> Self {
        ExactBaseline::default()
    }

    /// Builds from a full mixed stream.
    pub fn from_stream(stream: &EventStream) -> Self {
        let mut b = ExactBaseline::new();
        for el in stream.iter() {
            b.ingest(el.event, el.ts).expect("stream is sorted");
        }
        b
    }

    /// Records one arrival; timestamps must be globally non-decreasing.
    pub fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), StreamError> {
        if let Some(last) = self.last_ts {
            if ts < last {
                return Err(StreamError::NonMonotonicTimestamp { previous: last, offered: ts });
            }
        }
        self.curves.entry(event).or_default().record(ts);
        self.last_ts = Some(ts);
        self.elements += 1;
        Ok(())
    }

    /// Number of ingested elements N.
    pub fn len(&self) -> u64 {
        self.elements
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.elements == 0
    }

    /// Latest ingested timestamp `T`.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.last_ts
    }

    /// Distinct events seen so far.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.curves.keys().copied()
    }

    /// The exact frequency curve of `event`, if it has appeared.
    pub fn curve(&self, event: EventId) -> Option<&FrequencyCurve> {
        self.curves.get(&event)
    }

    /// Exact cumulative frequency `F_e(t)`.
    pub fn cumulative_frequency(&self, event: EventId, t: Timestamp) -> u64 {
        self.curves.get(&event).map_or(0, |c| c.value_at(t))
    }

    /// Exact burst frequency `bf_e(t)`.
    pub fn burst_frequency(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> u64 {
        self.curves.get(&event).map_or(0, |c| c.burst_frequency(t, tau))
    }

    /// POINT QUERY `q(e, t, τ)`: exact burstiness `b_e(t)`.
    pub fn point_query(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> Burstiness {
        self.curves.get(&event).map_or(0, |c| c.burstiness(t, tau))
    }

    /// BURSTY TIME QUERY `q(e, θ, τ)`: maximal time ranges within
    /// `[0, horizon]` where `b_e(t) ≥ θ`.
    ///
    /// Burstiness is constant between consecutive breakpoints, so we evaluate
    /// once per breakpoint and merge qualifying stretches.
    pub fn bursty_times(
        &self,
        event: EventId,
        theta: Burstiness,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Vec<TimeRange> {
        let Some(curve) = self.curves.get(&event) else {
            // b ≡ 0 for unseen events: qualifies everywhere iff θ ≤ 0.
            return if theta <= 0 { vec![TimeRange::up_to(horizon)] } else { Vec::new() };
        };

        let mut breakpoints: Vec<u64> = Vec::with_capacity(curve.n_points() * 3 + 1);
        breakpoints.push(0);
        for c in curve.corners() {
            for delta in [0, tau.ticks(), tau.ticks().saturating_mul(2)] {
                let bp = c.t.ticks().saturating_add(delta);
                if bp <= horizon.ticks() {
                    breakpoints.push(bp);
                }
            }
        }
        breakpoints.sort_unstable();
        breakpoints.dedup();

        let mut ranges: Vec<TimeRange> = Vec::new();
        for (i, &bp) in breakpoints.iter().enumerate() {
            let b = curve.burstiness(Timestamp(bp), tau);
            if b < theta {
                continue;
            }
            let end = match breakpoints.get(i + 1) {
                Some(&next) => Timestamp(next - 1),
                None => horizon,
            };
            let range = TimeRange { start: Timestamp(bp), end };
            match ranges.last_mut() {
                Some(last) if last.adjacent_or_overlapping(&range) => *last = last.merge(&range),
                _ => ranges.push(range),
            }
        }
        ranges
    }

    /// BURSTY EVENT QUERY `q(t, θ, τ)`: all events with `b_e(t) ≥ θ`, with
    /// their exact burstiness. Cost: one point query per distinct event.
    pub fn bursty_events(
        &self,
        t: Timestamp,
        theta: Burstiness,
        tau: BurstSpan,
    ) -> Vec<(EventId, Burstiness)> {
        self.curves
            .iter()
            .filter_map(|(&e, c)| {
                let b = c.burstiness(t, tau);
                (b >= theta).then_some((e, b))
            })
            .collect()
    }

    /// Storage cost of the baseline in bytes: 16 bytes per stored corner
    /// point (`u64` timestamp + `u64` cumulative count). This is the number
    /// the sketches' `size_bytes` is compared against.
    pub fn size_bytes(&self) -> usize {
        self.curves.values().map(|c| c.n_points() * 16).sum()
    }

    /// Total corner points across all curves (`n` in the paper's analysis).
    pub fn total_corner_points(&self) -> usize {
        self.curves.values().map(|c| c.n_points()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(elements: &[(u32, u64)]) -> ExactBaseline {
        let stream: EventStream = elements.iter().copied().collect();
        ExactBaseline::from_stream(&stream)
    }

    #[test]
    fn ingest_rejects_time_travel() {
        let mut b = ExactBaseline::new();
        b.ingest(EventId(0), Timestamp(5)).unwrap();
        b.ingest(EventId(1), Timestamp(5)).unwrap();
        assert!(b.ingest(EventId(0), Timestamp(4)).is_err());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn point_query_unknown_event_is_zero() {
        let b = baseline(&[(1, 10)]);
        assert_eq!(b.point_query(EventId(9), Timestamp(10), BurstSpan::new(5).unwrap()), 0);
    }

    #[test]
    fn point_query_matches_curve() {
        let b = baseline(&[(1, 0), (1, 0), (1, 6), (2, 6), (1, 7)]);
        let tau = BurstSpan::new(5).unwrap();
        // F_1: (0,2), (6,3), (7,4)
        // b_1(7) = F(7) - 2F(2) + F(never) = 4 - 4 + 0 = 0
        assert_eq!(b.point_query(EventId(1), Timestamp(7), tau), 0);
        // b_1(11) = F(11) - 2F(6) + F(1) = 4 - 6 + 2 = 0
        assert_eq!(b.point_query(EventId(1), Timestamp(11), tau), 0);
        // b_2(6) = 1 - 0 + 0
        assert_eq!(b.point_query(EventId(2), Timestamp(6), tau), 1);
    }

    #[test]
    fn bursty_times_finds_the_burst_window() {
        // Event bursts at t=100..104 (5 arrivals), silence elsewhere.
        let els: Vec<(u32, u64)> = (100..105).map(|t| (1, t)).collect();
        let b = baseline(&els);
        let tau = BurstSpan::new(10).unwrap();
        let horizon = Timestamp(200);
        let ranges = b.bursty_times(EventId(1), 3, tau, horizon);
        assert!(!ranges.is_empty());
        // every reported tick must indeed satisfy b >= 3, and ticks just
        // outside must not
        for r in &ranges {
            for t in r.start.ticks()..=r.end.ticks() {
                assert!(
                    b.point_query(EventId(1), Timestamp(t), tau) >= 3,
                    "tick {t} inside reported range fails threshold"
                );
            }
        }
        // brute-force cross-check over the horizon
        let mut expected: Vec<u64> = Vec::new();
        for t in 0..=horizon.ticks() {
            if b.point_query(EventId(1), Timestamp(t), tau) >= 3 {
                expected.push(t);
            }
        }
        let mut reported: Vec<u64> = Vec::new();
        for r in &ranges {
            reported.extend(r.start.ticks()..=r.end.ticks());
        }
        assert_eq!(reported, expected);
    }

    #[test]
    fn bursty_times_with_nonpositive_threshold_covers_everything_for_unseen() {
        let b = baseline(&[(1, 10)]);
        let tau = BurstSpan::new(5).unwrap();
        let ranges = b.bursty_times(EventId(42), 0, tau, Timestamp(20));
        assert_eq!(ranges, vec![TimeRange::up_to(Timestamp(20))]);
        assert!(b.bursty_times(EventId(42), 1, tau, Timestamp(20)).is_empty());
    }

    #[test]
    fn bursty_times_merges_adjacent_ranges() {
        let els: Vec<(u32, u64)> = (0..50).map(|t| (1, t)).collect();
        let b = baseline(&els);
        let tau = BurstSpan::new(3).unwrap();
        let ranges = b.bursty_times(EventId(1), 1, tau, Timestamp(60));
        for w in ranges.windows(2) {
            assert!(
                !w[0].adjacent_or_overlapping(&w[1]),
                "ranges {} and {} should have been merged",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn bursty_events_filters_by_threshold() {
        // Event 1 bursts near t=20; event 2 is steady; event 3 absent then.
        let mut els: Vec<(u32, u64)> = (16..=20).map(|t| (1, t)).collect();
        els.extend((0..=20).step_by(5).map(|t| (2, t)));
        els.push((3, 2));
        let b = baseline(&els);
        let tau = BurstSpan::new(5).unwrap();
        let hits = b.bursty_events(Timestamp(20), 3, tau);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, EventId(1));
        assert!(hits[0].1 >= 3);
        // with θ = i64::MIN everything qualifies
        let all = b.bursty_events(Timestamp(20), i64::MIN, tau);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn storage_accounting() {
        let b = baseline(&[(1, 0), (1, 0), (1, 5), (2, 9)]);
        // event 1: corners at t=0, t=5 → 2 points; event 2: 1 point
        assert_eq!(b.total_corner_points(), 3);
        assert_eq!(b.size_bytes(), 48);
    }
}
