//! Bounded out-of-order tolerance for real feeds.
//!
//! The sketches require non-decreasing timestamps (they summarise a
//! monotone cumulative curve), but real ingestion pipelines deliver slightly
//! shuffled elements. A [`ReorderBuffer`] holds arrivals inside a
//! *lateness window* of `L` ticks and releases them in timestamp order;
//! anything older than `watermark = max_seen − L` is either rejected or
//! clamped forward, by policy.

use std::collections::BinaryHeap;

use crate::element::StreamElement;
use crate::error::StreamError;
use crate::time::Timestamp;

/// What to do with an element that arrives behind the watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatePolicy {
    /// Return an error to the caller (default: loud and lossless).
    Reject,
    /// Clamp its timestamp to the watermark (lossy in time, not in count).
    ClampForward,
    /// Silently drop it (lossy in count; for fire-and-forget feeds).
    Drop,
}

/// Min-heap entry ordered by timestamp (then event id for determinism).
#[derive(Debug, PartialEq, Eq)]
struct Pending(StreamElement);

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for min-by-timestamp.
        other.0.ts.cmp(&self.0.ts).then(other.0.event.cmp(&self.0.event))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Buffers out-of-order arrivals and emits them sorted.
///
/// ```
/// use bed_stream::reorder::{LatePolicy, ReorderBuffer};
/// use bed_stream::{StreamElement, Timestamp};
///
/// let mut buf = ReorderBuffer::new(10, LatePolicy::Reject);
/// let mut out = Vec::new();
/// for &(e, t) in &[(1u32, 5u64), (2, 3), (1, 12), (3, 8), (1, 25)] {
///     buf.offer(StreamElement::new(e, t), &mut out).unwrap();
/// }
/// buf.drain(&mut out);
/// let ts: Vec<u64> = out.iter().map(|el| el.ts.ticks()).collect();
/// assert_eq!(ts, vec![3, 5, 8, 12, 25]);
/// ```
#[derive(Debug)]
pub struct ReorderBuffer {
    lateness: u64,
    policy: LatePolicy,
    heap: BinaryHeap<Pending>,
    max_seen: Option<Timestamp>,
    released: Option<Timestamp>,
    dropped: u64,
    clamped: u64,
}

impl ReorderBuffer {
    /// Creates a buffer tolerating up to `lateness` ticks of disorder.
    pub fn new(lateness: u64, policy: LatePolicy) -> Self {
        ReorderBuffer {
            lateness,
            policy,
            heap: BinaryHeap::new(),
            max_seen: None,
            released: None,
            dropped: 0,
            clamped: 0,
        }
    }

    /// Current watermark: elements at or after it may still arrive in order.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.max_seen.map(|m| Timestamp(m.ticks().saturating_sub(self.lateness)))
    }

    /// Elements dropped under [`LatePolicy::Drop`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Elements clamped under [`LatePolicy::ClampForward`].
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Elements currently held back.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Offers one element; releases every element whose timestamp is final
    /// (≤ the new watermark) into `out`, in timestamp order.
    pub fn offer(
        &mut self,
        el: StreamElement,
        out: &mut Vec<StreamElement>,
    ) -> Result<(), StreamError> {
        let el = match self.watermark() {
            Some(w) if el.ts < w => match self.policy {
                LatePolicy::Reject => {
                    return Err(StreamError::NonMonotonicTimestamp { previous: w, offered: el.ts });
                }
                LatePolicy::ClampForward => {
                    self.clamped += 1;
                    StreamElement { event: el.event, ts: w }
                }
                LatePolicy::Drop => {
                    self.dropped += 1;
                    return Ok(());
                }
            },
            _ => el,
        };
        self.max_seen = Some(self.max_seen.map_or(el.ts, |m| m.max(el.ts)));
        self.heap.push(Pending(el));
        let watermark = self.watermark().expect("max_seen was just set");
        while let Some(top) = self.heap.peek() {
            if top.0.ts > watermark {
                break;
            }
            let el = self.heap.pop().expect("peeked").0;
            debug_assert!(self.released.is_none_or(|r| el.ts >= r));
            self.released = Some(el.ts);
            out.push(el);
        }
        Ok(())
    }

    /// Flushes everything still held back (end of stream, or a forced
    /// barrier). Elements above the watermark are released early, so the
    /// watermark is advanced to the last released timestamp: offers behind
    /// it afterwards are treated as late (by policy) rather than silently
    /// emitted out of order behind already-released elements.
    pub fn drain(&mut self, out: &mut Vec<StreamElement>) {
        while let Some(Pending(el)) = self.heap.pop() {
            self.released = Some(el.ts);
            out.push(el);
        }
        if let Some(r) = self.released {
            let floor = Timestamp(r.ticks().saturating_add(self.lateness));
            self.max_seen = Some(self.max_seen.map_or(floor, |m| m.max(floor)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    fn els(raw: &[(u32, u64)]) -> Vec<StreamElement> {
        raw.iter().map(|&(e, t)| StreamElement::new(e, t)).collect()
    }

    #[test]
    fn releases_in_order_within_window() {
        let mut buf = ReorderBuffer::new(5, LatePolicy::Reject);
        let mut out = Vec::new();
        for el in els(&[(0, 10), (0, 8), (0, 12), (0, 9), (0, 20)]) {
            buf.offer(el, &mut out).unwrap();
        }
        buf.drain(&mut out);
        let ts: Vec<u64> = out.iter().map(|el| el.ts.ticks()).collect();
        assert_eq!(ts, vec![8, 9, 10, 12, 20]);
    }

    #[test]
    fn rejects_behind_watermark() {
        let mut buf = ReorderBuffer::new(3, LatePolicy::Reject);
        let mut out = Vec::new();
        buf.offer(StreamElement::new(0u32, 100u64), &mut out).unwrap();
        // watermark = 97; t=96 is too late
        let err = buf.offer(StreamElement::new(0u32, 96u64), &mut out);
        assert!(err.is_err());
        // t=97 is exactly on the watermark: accepted
        buf.offer(StreamElement::new(0u32, 97u64), &mut out).unwrap();
    }

    #[test]
    fn clamp_forward_keeps_counts() {
        let mut buf = ReorderBuffer::new(2, LatePolicy::ClampForward);
        let mut out = Vec::new();
        buf.offer(StreamElement::new(0u32, 50u64), &mut out).unwrap();
        buf.offer(StreamElement::new(1u32, 10u64), &mut out).unwrap(); // clamped to 48
        buf.drain(&mut out);
        assert_eq!(buf.clamped(), 1);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|el| el.ts == Timestamp(48) && el.event == EventId(1)));
    }

    #[test]
    fn drop_policy_counts_losses() {
        let mut buf = ReorderBuffer::new(1, LatePolicy::Drop);
        let mut out = Vec::new();
        buf.offer(StreamElement::new(0u32, 100u64), &mut out).unwrap();
        buf.offer(StreamElement::new(0u32, 5u64), &mut out).unwrap();
        assert_eq!(buf.dropped(), 1);
        buf.drain(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn released_prefix_is_always_sorted() {
        // pseudo-random jitter within the window must still come out sorted
        let mut buf = ReorderBuffer::new(16, LatePolicy::Reject);
        let mut out = Vec::new();
        let mut x = 12345u64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let jitter = x % 16;
            let t = i * 2 + jitter;
            buf.offer(StreamElement::new((x % 8) as u32, t), &mut out).unwrap();
        }
        buf.drain(&mut out);
        assert_eq!(out.len(), 500);
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn offer_after_drain_cannot_reorder_output() {
        let mut buf = ReorderBuffer::new(10, LatePolicy::Reject);
        let mut out = Vec::new();
        buf.offer(StreamElement::new(0u32, 100u64), &mut out).unwrap();
        buf.drain(&mut out); // force-releases ts=100 (above the watermark)
        assert_eq!(out.len(), 1);
        // ts=95 would sort before the already-released 100: must be late now
        assert!(buf.offer(StreamElement::new(0u32, 95u64), &mut out).is_err());
        // at-or-after the released timestamp's window is fine
        buf.offer(StreamElement::new(0u32, 120u64), &mut out).unwrap();
        buf.drain(&mut out);
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts), "{out:?}");
    }

    #[test]
    fn watermark_never_regresses() {
        let mut buf = ReorderBuffer::new(10, LatePolicy::Reject);
        let mut out = Vec::new();
        buf.offer(StreamElement::new(0u32, 100u64), &mut out).unwrap();
        let w1 = buf.watermark().unwrap();
        buf.offer(StreamElement::new(0u32, 95u64), &mut out).unwrap();
        assert_eq!(buf.watermark().unwrap(), w1);
        buf.offer(StreamElement::new(0u32, 200u64), &mut out).unwrap();
        assert!(buf.watermark().unwrap() > w1);
    }
}
