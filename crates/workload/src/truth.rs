//! Ground-truth evaluation helpers shared by the experiment harness.
//!
//! The paper evaluates on three measures (Section VI): storage space,
//! execution time, and accuracy — the latter as the additive point-query
//! error `|b̃_e(t) − b_e(t)|` averaged over random historical queries, and
//! as precision/recall for bursty event queries.

use bed_stream::{BurstSpan, Burstiness, EventId, ExactBaseline, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random historical point-query workload: `count` uniformly random
/// `(event, t)` pairs over the given events and horizon ("assuming that each
/// time instance is equally likely to be queried", Section III).
pub fn random_point_queries(
    events: &[EventId],
    horizon: Timestamp,
    count: usize,
    seed: u64,
) -> Vec<(EventId, Timestamp)> {
    assert!(!events.is_empty(), "need at least one event to query");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let e = events[rng.gen_range(0..events.len())];
            let t = Timestamp(rng.gen_range(0..=horizon.ticks()));
            (e, t)
        })
        .collect()
}

/// Mean absolute burstiness error of an estimator over a query workload.
pub fn mean_abs_error(
    baseline: &ExactBaseline,
    queries: &[(EventId, Timestamp)],
    tau: BurstSpan,
    mut estimate: impl FnMut(EventId, Timestamp) -> f64,
) -> f64 {
    assert!(!queries.is_empty());
    let total: f64 = queries
        .iter()
        .map(|&(e, t)| {
            let truth = baseline.point_query(e, t, tau) as f64;
            (estimate(e, t) - truth).abs()
        })
        .sum();
    total / queries.len() as f64
}

/// Precision and recall of a reported bursty-event set against the exact
/// answer at threshold θ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// |reported ∩ truth| / |reported| (1.0 for an empty report).
    pub precision: f64,
    /// |reported ∩ truth| / |truth| (1.0 for an empty truth set).
    pub recall: f64,
    /// Number of true positives.
    pub true_positives: usize,
    /// Size of the exact answer set.
    pub truth_size: usize,
    /// Size of the reported set.
    pub reported_size: usize,
}

impl PrecisionRecall {
    /// F1 score (0 when both precision and recall are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision;
        let r = self.recall;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Computes precision/recall of `reported` versus the exact bursty event set
/// at `(t, θ, τ)`.
pub fn precision_recall(
    baseline: &ExactBaseline,
    reported: &[EventId],
    t: Timestamp,
    theta: Burstiness,
    tau: BurstSpan,
) -> PrecisionRecall {
    let truth: Vec<EventId> =
        baseline.bursty_events(t, theta, tau).into_iter().map(|(e, _)| e).collect();
    let tp = reported.iter().filter(|e| truth.contains(e)).count();
    PrecisionRecall {
        precision: if reported.is_empty() { 1.0 } else { tp as f64 / reported.len() as f64 },
        recall: if truth.is_empty() { 1.0 } else { tp as f64 / truth.len() as f64 },
        true_positives: tp,
        truth_size: truth.len(),
        reported_size: reported.len(),
    }
}

/// Exact burstiness time series of one event sampled every `step` ticks —
/// the data behind Fig. 7b and Fig. 13.
pub fn burstiness_series(
    baseline: &ExactBaseline,
    event: EventId,
    tau: BurstSpan,
    horizon: Timestamp,
    step: u64,
) -> Vec<(Timestamp, Burstiness)> {
    assert!(step > 0);
    let mut out = Vec::new();
    let mut t = 0u64;
    while t <= horizon.ticks() {
        out.push((Timestamp(t), baseline.point_query(event, Timestamp(t), tau)));
        t += step;
    }
    out
}

/// Incoming-rate (burst frequency) time series — the data behind Fig. 7a.
pub fn incoming_rate_series(
    baseline: &ExactBaseline,
    event: EventId,
    tau: BurstSpan,
    horizon: Timestamp,
    step: u64,
) -> Vec<(Timestamp, u64)> {
    assert!(step > 0);
    let mut out = Vec::new();
    let mut t = 0u64;
    while t <= horizon.ticks() {
        out.push((Timestamp(t), baseline.burst_frequency(event, Timestamp(t), tau)));
        t += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_stream::EventStream;

    fn fixture() -> ExactBaseline {
        let els: Vec<(u32, u64)> = (0..100u64).map(|t| (0u32, t)).chain([(1u32, 50u64)]).collect();
        ExactBaseline::from_stream(&EventStream::from_unsorted(
            els.into_iter().map(|(e, t)| bed_stream::StreamElement::new(e, t)).collect(),
        ))
    }

    #[test]
    fn query_workload_is_seeded_and_in_range() {
        let events = vec![EventId(0), EventId(1)];
        let a = random_point_queries(&events, Timestamp(100), 50, 9);
        let b = random_point_queries(&events, Timestamp(100), 50, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(e, t)| t.ticks() <= 100 && e.value() < 2));
    }

    #[test]
    fn mean_abs_error_of_perfect_estimator_is_zero() {
        let base = fixture();
        let tau = BurstSpan::new(10).unwrap();
        let queries = random_point_queries(&[EventId(0), EventId(1)], Timestamp(120), 40, 1);
        let err = mean_abs_error(&base, &queries, tau, |e, t| base.point_query(e, t, tau) as f64);
        assert_eq!(err, 0.0);
        let biased =
            mean_abs_error(&base, &queries, tau, |e, t| base.point_query(e, t, tau) as f64 + 2.0);
        assert!((biased - 2.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_accounting() {
        let base = fixture();
        let tau = BurstSpan::new(10).unwrap();
        // truth at t=50: event 1 just appeared (b=1); event 0 steady (b=0).
        let pr = precision_recall(&base, &[EventId(1)], Timestamp(50), 1, tau);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.true_positives, 1);

        let pr = precision_recall(&base, &[EventId(0), EventId(1)], Timestamp(50), 1, tau);
        assert_eq!(pr.precision, 0.5);
        assert_eq!(pr.recall, 1.0);
        assert!((pr.f1() - 2.0 / 3.0).abs() < 1e-12);

        let pr = precision_recall(&base, &[], Timestamp(50), 1, tau);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn series_shapes() {
        let base = fixture();
        let tau = BurstSpan::new(10).unwrap();
        let series = burstiness_series(&base, EventId(0), tau, Timestamp(100), 10);
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].0, Timestamp(0));
        let rates = incoming_rate_series(&base, EventId(0), tau, Timestamp(100), 25);
        assert_eq!(rates.len(), 5);
        // constant-rate event: steady incoming rate mid-stream
        assert_eq!(rates[2].1, 10);
    }
}
