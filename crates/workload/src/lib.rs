//! # bed-workload — synthetic event streams and ground-truth evaluation
//!
//! The paper evaluates on two Twitter samples that cannot be redistributed:
//!
//! * **olympicrio** — August 2016, `N = 5,032,975` tweets, `K = 864` events,
//!   second-granularity timestamps over `T = 2,678,400` s, with the
//!   `soccer` and `swimming` sub-streams of Fig. 7 (both normalised to one
//!   million tweets for the single-stream experiments);
//! * **uspolitics** — June–November 2016, 286 M tweets (5 M sampled),
//!   `K = 1,689` events with heavily skewed popularity and many short
//!   intermittent spikes, each event leaning Democrat or Republican
//!   (Fig. 13).
//!
//! This crate generates seeded synthetic equivalents. The sketches only ever
//! see `(event id, timestamp)` pairs, so what matters for reproducing the
//! paper's *shapes* is the statistics of the frequency curves — burst
//! placement/amplitude, background rates, popularity skew — which the
//! generators control explicitly:
//!
//! * [`zipf`] — Zipf(α) popularity sampling.
//! * [`profile`] — per-event rate profiles (background + burst shapes) and
//!   Poisson timestamp sampling.
//! * [`olympics`] — the olympicrio-like generator with `soccer`/`swimming`
//!   marquee events shaped after Fig. 7.
//! * [`politics`] — the uspolitics-like generator with spiky, skewed events
//!   and party labels.
//! * [`truth`] — exact-baseline helpers: error metrics, query workloads,
//!   precision/recall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod olympics;
pub mod politics;
pub mod profile;
pub mod truth;
pub mod zipf;

pub use olympics::{OlympicsConfig, OlympicsStream};
pub use politics::{Party, PoliticsConfig, PoliticsStream};
pub use profile::{Burst, BurstShape, RateProfile};
pub use zipf::Zipf;
