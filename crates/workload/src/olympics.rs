//! The olympicrio-like stream generator.
//!
//! Reproduces the statistics the paper reports for its first dataset
//! (Section VI, "Data sets"): one month of second-granularity timestamps
//! (`T = 2,678,400`), `K = 864` event identifiers, and two marquee events
//! shaped after Fig. 7:
//!
//! * **soccer** — matches throughout the month (a burst every few days),
//!   amplitudes growing toward the final ("the largest burst happens right
//!   before the final");
//! * **swimming** — "matches were concentrated in a few days in the first
//!   half of the game ... after which both its incoming rate and burstiness
//!   decrease to almost zero".
//!
//! Everything else is a Zipf-popularity background crowd with occasional
//! small spikes. All randomness flows from one seed.

use bed_stream::{EventId, EventStream, StreamElement, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::{Burst, BurstShape, RateProfile};
use crate::zipf::Zipf;

/// Seconds in the August 2016 horizon (31 days).
pub const OLYMPICS_HORIZON_SECS: u64 = 2_678_400;
/// Bucket granularity for rate profiles: one hour.
pub const BUCKET_SECS: u64 = 3_600;
/// Event id universe size reported for olympicrio.
pub const OLYMPICS_UNIVERSE: u32 = 864;

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlympicsConfig {
    /// Target total element count (the paper normalises to 1M for the
    /// single-stream study; the full sample is ~5M).
    pub total_elements: u64,
    /// RNG seed — same seed, same stream.
    pub seed: u64,
}

impl Default for OlympicsConfig {
    fn default() -> Self {
        OlympicsConfig { total_elements: 1_000_000, seed: 2016 }
    }
}

/// The generated stream plus metadata.
#[derive(Debug, Clone)]
pub struct OlympicsStream {
    /// The mixed event stream, sorted by timestamp.
    pub stream: EventStream,
    /// The soccer marquee event id.
    pub soccer: EventId,
    /// The swimming marquee event id.
    pub swimming: EventId,
    /// Universe size K.
    pub universe: u32,
}

/// Soccer: a match burst every ~3 days, growing amplitude, final on day 20.
fn soccer_profile(buckets: usize) -> RateProfile {
    let mut p = RateProfile::flat(buckets, 18.0);
    let match_days = [2usize, 5, 8, 11, 14, 17, 20];
    for (i, &day) in match_days.iter().enumerate() {
        let start = day * 24;
        let is_final = i + 1 == match_days.len();
        let amplitude = 3_000.0 * (i as f64 + 1.0) + if is_final { 24_000.0 } else { 0.0 };
        p = p.with_burst(Burst {
            start_bucket: start,
            end_bucket: (start + 30).min(buckets),
            total_mentions: amplitude,
            shape: if is_final { BurstShape::RampUp } else { BurstShape::Spike },
        });
    }
    p
}

/// Swimming: heats and finals on days 6–13, then silence.
fn swimming_profile(buckets: usize) -> RateProfile {
    let mut p = RateProfile::flat(buckets, 4.0);
    for day in 6usize..=13 {
        let start = day * 24;
        p = p.with_burst(Burst {
            start_bucket: start,
            end_bucket: (start + 20).min(buckets),
            total_mentions: 5_000.0 + 1_500.0 * (day as f64 - 6.0),
            shape: BurstShape::Spike,
        });
    }
    p
}

/// Generates the stream.
pub fn generate(config: OlympicsConfig) -> OlympicsStream {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let buckets = (OLYMPICS_HORIZON_SECS / BUCKET_SECS) as usize;
    let soccer = EventId(0);
    let swimming = EventId(1);

    // Expected mass of each profile at scale 1, to derive the scale that
    // hits total_elements.
    let soccer_p = soccer_profile(buckets);
    let swimming_p = swimming_profile(buckets);
    let zipf = Zipf::new(OLYMPICS_UNIVERSE as usize - 2, 0.9);

    // Background events: per-event expected mass ∝ Zipf pmf; a fraction get
    // one random spike. Aim marquee events at ~20% of total volume combined.
    let marquee_expected = soccer_p.total_expected() + swimming_p.total_expected();
    let target_marquee = config.total_elements as f64 * 0.2;
    let marquee_scale = target_marquee / marquee_expected;
    let background_total = config.total_elements as f64 - target_marquee;

    let mut elements: Vec<StreamElement> = Vec::with_capacity(config.total_elements as usize);
    let mut ticks: Vec<u64> = Vec::new();

    let emit = |event: EventId, ticks: &mut Vec<u64>, elements: &mut Vec<StreamElement>| {
        for &t in ticks.iter() {
            elements.push(StreamElement { event, ts: Timestamp(t) });
        }
        ticks.clear();
    };

    soccer_p.sample_into(&mut rng, BUCKET_SECS, marquee_scale, &mut ticks);
    emit(soccer, &mut ticks, &mut elements);
    swimming_p.sample_into(&mut rng, BUCKET_SECS, marquee_scale, &mut ticks);
    emit(swimming, &mut ticks, &mut elements);

    for rank in 0..(OLYMPICS_UNIVERSE - 2) {
        let event = EventId(rank + 2);
        let mass = background_total * zipf.pmf(rank as usize);
        let mut profile = RateProfile::flat(buckets, mass * 0.85 / buckets as f64);
        // ~40% of events get one modest spike at a random day.
        if rng.gen_bool(0.4) {
            let day = rng.gen_range(0..28usize);
            profile = profile.with_burst(Burst {
                start_bucket: day * 24,
                end_bucket: day * 24 + 12,
                total_mentions: mass * 0.15,
                shape: BurstShape::Spike,
            });
        }
        profile.sample_into(&mut rng, BUCKET_SECS, 1.0, &mut ticks);
        emit(event, &mut ticks, &mut elements);
    }

    elements.sort_by_key(|el| el.ts);
    OlympicsStream {
        stream: EventStream::from_sorted(elements).expect("sorted by construction"),
        soccer,
        swimming,
        universe: OLYMPICS_UNIVERSE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_stream::{BurstSpan, ExactBaseline};

    fn small() -> OlympicsStream {
        generate(OlympicsConfig { total_elements: 60_000, seed: 1 })
    }

    #[test]
    fn volume_is_close_to_target() {
        let s = small();
        let n = s.stream.len() as f64;
        assert!((n - 60_000.0).abs() < 6_000.0, "n={n}");
    }

    #[test]
    fn timestamps_fit_the_horizon_and_are_sorted() {
        let s = small();
        assert!(s.stream.last_timestamp().unwrap().ticks() < OLYMPICS_HORIZON_SECS);
        for w in s.stream.elements().windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn universe_is_covered_by_popular_ranks() {
        let s = small();
        let distinct = s.stream.distinct_events().len();
        assert!(distinct > 200, "only {distinct} distinct events");
        assert!(distinct <= OLYMPICS_UNIVERSE as usize);
    }

    #[test]
    fn soccer_bursts_through_the_month_swimming_first_half() {
        let s = generate(OlympicsConfig { total_elements: 200_000, seed: 2 });
        let baseline = ExactBaseline::from_stream(&s.stream);
        let tau = BurstSpan::DAY_SECONDS;
        let day = |d: u64| Timestamp(d * 86_400);

        // Fig. 7 soccer: biggest burstiness late (final ~day 20)
        let b_soccer_final = baseline.point_query(s.soccer, day(21), tau);
        let b_soccer_early = baseline.point_query(s.soccer, day(3), tau);
        assert!(
            b_soccer_final > b_soccer_early.max(0) * 2,
            "final {b_soccer_final} vs early {b_soccer_early}"
        );

        // Fig. 7 swimming: active first half, dead second half
        let sw = s.stream.project(s.swimming);
        let first_half = sw.timestamps().iter().filter(|t| t.ticks() < 14 * 86_400).count();
        let second_half = sw.len() - first_half;
        assert!(first_half > second_half * 5, "{first_half} vs {second_half}");

        // swimming burstiness collapses to ~0 after day 16
        let b_sw_late = baseline.point_query(s.swimming, day(20), tau);
        assert!(b_sw_late.abs() < 100, "late swimming burstiness {b_sw_late}");
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = generate(OlympicsConfig { total_elements: 20_000, seed: 7 });
        let b = generate(OlympicsConfig { total_elements: 20_000, seed: 7 });
        assert_eq!(a.stream, b.stream);
        let c = generate(OlympicsConfig { total_elements: 20_000, seed: 8 });
        assert_ne!(a.stream, c.stream);
    }
}
