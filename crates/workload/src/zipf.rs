//! Zipf(α) sampling over a finite rank space.
//!
//! The uspolitics dataset's defining property is that "events have very
//! different population: some attract a lot of attention, while others have
//! only a few discussions" (Section VI-C) — i.e. a heavy-tailed popularity
//! distribution, which we model as Zipf with configurable exponent.

use rand::Rng;

/// Inverse-CDF Zipf sampler: rank `r ∈ [0, n)` has probability
/// `∝ 1 / (r + 1)^alpha`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, cdf[r] = P(rank ≤ r).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `alpha ≥ 0`
    /// (`alpha = 0` is uniform; the classic web/word skew is `alpha ≈ 1`).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "rank space must be non-empty");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be a finite non-negative number");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the rank space is trivial.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15);
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_skew_matches_alpha() {
        let z = Zipf::new(50, 1.2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // rank 0 should dominate and the tail should be thin
        assert!(counts[0] > counts[10] * 5, "{} vs {}", counts[0], counts[10]);
        assert!(counts[0] as f64 / n as f64 > 0.2);
        // every expected-frequent rank appears
        assert!(counts[..5].iter().all(|&c| c > 0));
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
