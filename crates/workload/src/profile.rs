//! Per-event rate profiles and Poisson timestamp sampling.
//!
//! An event's mentioning behaviour is modelled as an inhomogeneous Poisson
//! process: a constant background rate plus a set of [`Burst`]s, each with a
//! shape (spike, ramp, plateau — the building blocks of Fig. 7's soccer and
//! swimming curves). The profile yields an expected count per time bucket;
//! sampling draws a Poisson count per bucket and spreads the arrivals
//! uniformly within it.

use rand::Rng;

/// The temporal shape of one burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BurstShape {
    /// Sharp rise and fall around the midpoint (breaking news).
    Spike,
    /// Linear rise to the end, then stop (building anticipation — the
    /// soccer-final pattern: "the largest burst happens right before the
    /// final").
    RampUp,
    /// Linear decay from the start (aftermath chatter).
    RampDown,
    /// Constant elevated rate (an ongoing situation; raises frequency but —
    /// per the paper's weather-report example — not burstiness, except at
    /// its edges).
    Plateau,
}

/// One burst: extra mentions over `[start_bucket, end_bucket)` with a total
/// expected mass of `total_mentions`, distributed per [`BurstShape`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// First bucket of the burst.
    pub start_bucket: usize,
    /// One past the last bucket.
    pub end_bucket: usize,
    /// Expected number of extra mentions contributed by the burst.
    pub total_mentions: f64,
    /// Temporal shape.
    pub shape: BurstShape,
}

impl Burst {
    /// Relative weight of the burst in bucket `b` (integrates to ~1 across
    /// the burst's span).
    fn weight(&self, b: usize) -> f64 {
        if b < self.start_bucket || b >= self.end_bucket {
            return 0.0;
        }
        let len = (self.end_bucket - self.start_bucket) as f64;
        let x = (b - self.start_bucket) as f64 / len; // [0, 1)
        let raw = match self.shape {
            BurstShape::Spike => {
                // triangular around the midpoint
                let d = (x - 0.5).abs();
                (1.0 - 2.0 * d).max(0.0) * 2.0
            }
            BurstShape::RampUp => 2.0 * x,
            BurstShape::RampDown => 2.0 * (1.0 - x),
            BurstShape::Plateau => 1.0,
        };
        raw / len
    }
}

/// The full rate profile of one event over `buckets` time buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct RateProfile {
    /// Number of buckets in the horizon.
    pub buckets: usize,
    /// Expected background mentions per bucket.
    pub background_per_bucket: f64,
    /// Bursts riding on the background.
    pub bursts: Vec<Burst>,
}

impl RateProfile {
    /// A flat profile with no bursts.
    pub fn flat(buckets: usize, background_per_bucket: f64) -> Self {
        RateProfile { buckets, background_per_bucket, bursts: Vec::new() }
    }

    /// Adds a burst (builder style).
    pub fn with_burst(mut self, burst: Burst) -> Self {
        debug_assert!(burst.end_bucket <= self.buckets && burst.start_bucket < burst.end_bucket);
        self.bursts.push(burst);
        self
    }

    /// Expected mentions in bucket `b`.
    pub fn expected(&self, b: usize) -> f64 {
        let burst_mass: f64 = self.bursts.iter().map(|bu| bu.total_mentions * bu.weight(b)).sum();
        self.background_per_bucket + burst_mass
    }

    /// Total expected mentions over the horizon.
    pub fn total_expected(&self) -> f64 {
        self.background_per_bucket * self.buckets as f64
            + self
                .bursts
                .iter()
                .map(|b| {
                    // sum of weights can be slightly below 1 from discretisation
                    (b.start_bucket..b.end_bucket).map(|i| b.weight(i)).sum::<f64>()
                        * b.total_mentions
                })
                .sum::<f64>()
    }

    /// Samples arrival timestamps: Poisson count per bucket, spread within
    /// the bucket with tick-level **clumping** — a fraction of each bucket's
    /// arrivals lands on a few "hot ticks", modelling retweet cascades and
    /// cross-posted breaking news. Real social streams are strongly clumped
    /// at second granularity, which is what makes the cumulative curve a
    /// coarse staircase rather than a smooth ramp (and is why the paper's
    /// PBE-1 staircase summary competes so well with the PLA).
    ///
    /// Appends ticks to `out` (unsorted within the horizon — callers
    /// building a mixed stream sort once at the end).
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        bucket_ticks: u64,
        scale: f64,
        out: &mut Vec<u64>,
    ) {
        const CLUMP_FRACTION: f64 = 0.7;
        for b in 0..self.buckets {
            let lambda = self.expected(b) * scale;
            let count = poisson(rng, lambda);
            if count == 0 {
                continue;
            }
            let base = b as u64 * bucket_ticks;
            // one hot tick per ~20 arrivals, at least one
            let hot: Vec<u64> =
                (0..(count / 20).max(1)).map(|_| base + rng.gen_range(0..bucket_ticks)).collect();
            for _ in 0..count {
                if rng.gen_bool(CLUMP_FRACTION) {
                    out.push(hot[rng.gen_range(0..hot.len())]);
                } else {
                    out.push(base + rng.gen_range(0..bucket_ticks));
                }
            }
        }
    }
}

/// Poisson(λ) sample: Knuth's product method for small λ, normal
/// approximation (rounded, clamped at 0) for large λ.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Box–Muller normal approximation N(λ, λ)
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = lambda + lambda.sqrt() * z;
        v.round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn burst_weights_integrate_to_one() {
        for shape in
            [BurstShape::Spike, BurstShape::RampUp, BurstShape::RampDown, BurstShape::Plateau]
        {
            let b = Burst { start_bucket: 10, end_bucket: 50, total_mentions: 100.0, shape };
            let sum: f64 = (0..60).map(|i| b.weight(i)).sum();
            assert!((sum - 1.0).abs() < 0.05, "{shape:?}: {sum}");
            assert_eq!(b.weight(9), 0.0);
            assert_eq!(b.weight(50), 0.0);
        }
    }

    #[test]
    fn ramp_up_peaks_at_the_end() {
        let b = Burst {
            start_bucket: 0,
            end_bucket: 10,
            total_mentions: 1.0,
            shape: BurstShape::RampUp,
        };
        assert!(b.weight(9) > b.weight(5));
        assert!(b.weight(5) > b.weight(1));
    }

    #[test]
    fn expected_combines_background_and_bursts() {
        let p = RateProfile::flat(100, 2.0).with_burst(Burst {
            start_bucket: 40,
            end_bucket: 60,
            total_mentions: 200.0,
            shape: BurstShape::Plateau,
        });
        assert_eq!(p.expected(10), 2.0);
        assert!((p.expected(50) - 12.0).abs() < 1e-9); // 2 + 200/20
        let total = p.total_expected();
        assert!((total - 400.0).abs() < 1.0);
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = SmallRng::seed_from_u64(42);
        for &lambda in &[0.5, 5.0, 80.0] {
            let n = 3_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1, "λ={lambda}: mean {mean}");
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn sampling_lands_in_buckets() {
        let p = RateProfile::flat(10, 5.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        p.sample_into(&mut rng, 100, 1.0, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|&t| t < 1_000));
        let mean_count = out.len() as f64 / 10.0;
        assert!((mean_count - 5.0).abs() < 2.0);
    }

    #[test]
    fn scale_multiplies_volume() {
        let p = RateProfile::flat(50, 4.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut small = Vec::new();
        let mut big = Vec::new();
        p.sample_into(&mut rng, 10, 1.0, &mut small);
        p.sample_into(&mut rng, 10, 5.0, &mut big);
        assert!(big.len() > small.len() * 3);
    }
}
