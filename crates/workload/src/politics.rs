//! The uspolitics-like stream generator.
//!
//! Reproduces the statistics the paper reports for its second dataset:
//! June–November 2016 (≈ 183 days), `K = 1,689` events, heavily skewed
//! popularity ("some events attract a lot of attention, while others have
//! only a few discussions"), and "many events with short periods of bursts
//! ... with intermittent spikes" (Fig. 13). Events carry a party label so
//! the Fig. 13 Democrat/Republican timeline can be reproduced.

use bed_stream::{EventId, EventStream, StreamElement, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::{Burst, BurstShape, RateProfile};
use crate::zipf::Zipf;

/// Seconds in the June–November horizon (183 days).
pub const POLITICS_HORIZON_SECS: u64 = 183 * 86_400;
/// Bucket granularity: one hour.
pub const BUCKET_SECS: u64 = 3_600;
/// Event id universe size reported for uspolitics.
pub const POLITICS_UNIVERSE: u32 = 1_689;

/// Party affiliation of an event (Fig. 13 categorises events into
/// "Democrats and Republican based on its affiliation towards one party").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// Democrat-leaning event.
    Democrat,
    /// Republican-leaning event.
    Republican,
}

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoliticsConfig {
    /// Target total element count (the paper samples 5M uniformly for the
    /// comparative study).
    pub total_elements: u64,
    /// Zipf exponent of the popularity skew (higher = more skewed; the
    /// paper's degradation at small sketch sizes stems from this skew).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoliticsConfig {
    fn default() -> Self {
        PoliticsConfig { total_elements: 1_000_000, skew: 1.1, seed: 1776 }
    }
}

/// The generated stream plus metadata.
#[derive(Debug, Clone)]
pub struct PoliticsStream {
    /// The mixed event stream, sorted by timestamp.
    pub stream: EventStream,
    /// Party of each event id (indexed by id).
    pub party: Vec<Party>,
    /// Days (0-based) of the shared "national moments" — conventions and
    /// debates — where many events of one party spike together.
    pub national_moments: Vec<(u64, Party)>,
    /// Universe size K.
    pub universe: u32,
}

impl PoliticsStream {
    /// Party of an event.
    pub fn party_of(&self, e: EventId) -> Party {
        self.party[e.index()]
    }

    /// All events of a party.
    pub fn events_of(&self, party: Party) -> impl Iterator<Item = EventId> + '_ {
        self.party
            .iter()
            .enumerate()
            .filter_map(move |(i, &p)| (p == party).then_some(EventId(i as u32)))
    }
}

/// Generates the stream.
pub fn generate(config: PoliticsConfig) -> PoliticsStream {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let buckets = (POLITICS_HORIZON_SECS / BUCKET_SECS) as usize;
    let zipf = Zipf::new(POLITICS_UNIVERSE as usize, config.skew);

    // Shared calendar: RNC ≈ day 48 (Jul 18), DNC ≈ day 55 (Jul 25),
    // debates ≈ days 117, 128, 140, election ≈ day 160.
    let national_moments: Vec<(u64, Party)> = vec![
        (48, Party::Republican),
        (55, Party::Democrat),
        (117, Party::Republican),
        (117, Party::Democrat),
        (128, Party::Democrat),
        (140, Party::Republican),
        (160, Party::Democrat),
        (160, Party::Republican),
    ];

    let mut party = Vec::with_capacity(POLITICS_UNIVERSE as usize);
    for i in 0..POLITICS_UNIVERSE {
        party.push(if i % 2 == 0 { Party::Democrat } else { Party::Republican });
    }

    let total = config.total_elements as f64;
    let mut elements: Vec<StreamElement> = Vec::with_capacity(config.total_elements as usize);
    let mut ticks: Vec<u64> = Vec::new();

    for rank in 0..POLITICS_UNIVERSE {
        let event = EventId(rank);
        let mass = total * zipf.pmf(rank as usize);
        // Spiky behaviour: only ~55% of an event's mass is background; the
        // rest concentrates in 1–5 short spikes.
        let mut profile = RateProfile::flat(buckets, mass * 0.55 / buckets as f64);
        let spikes = rng.gen_range(1..=5usize);
        let spike_mass = mass * 0.45 / spikes as f64;
        for _ in 0..spikes {
            // Half the spikes align with a national moment of the event's
            // party; the rest are idiosyncratic.
            let day = if rng.gen_bool(0.5) {
                let moments: Vec<u64> = national_moments
                    .iter()
                    .filter(|&&(_, p)| p == party[event.index()])
                    .map(|&(d, _)| d)
                    .collect();
                moments[rng.gen_range(0..moments.len())]
            } else {
                rng.gen_range(0..181u64)
            };
            let start = (day * 24) as usize;
            let dur = rng.gen_range(4..36usize);
            profile = profile.with_burst(Burst {
                start_bucket: start,
                end_bucket: (start + dur).min(buckets),
                total_mentions: spike_mass,
                shape: BurstShape::Spike,
            });
        }
        profile.sample_into(&mut rng, BUCKET_SECS, 1.0, &mut ticks);
        for &t in &ticks {
            elements.push(StreamElement { event, ts: Timestamp(t) });
        }
        ticks.clear();
    }

    elements.sort_by_key(|el| el.ts);
    PoliticsStream {
        stream: EventStream::from_sorted(elements).expect("sorted by construction"),
        party,
        national_moments,
        universe: POLITICS_UNIVERSE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_stream::{BurstSpan, ExactBaseline};

    fn small() -> PoliticsStream {
        generate(PoliticsConfig { total_elements: 80_000, skew: 1.1, seed: 3 })
    }

    #[test]
    fn volume_and_horizon() {
        let s = small();
        let n = s.stream.len() as f64;
        assert!((n - 80_000.0).abs() < 8_000.0, "n={n}");
        assert!(s.stream.last_timestamp().unwrap().ticks() < POLITICS_HORIZON_SECS);
    }

    #[test]
    fn popularity_is_skewed() {
        let s = small();
        let top = s.stream.project(EventId(0)).len();
        let mid = s.stream.project(EventId(200)).len().max(1);
        assert!(top > mid * 20, "top={top} mid={mid}");
    }

    #[test]
    fn parties_partition_the_universe() {
        let s = small();
        let dems = s.events_of(Party::Democrat).count();
        let reps = s.events_of(Party::Republican).count();
        assert_eq!(dems + reps, POLITICS_UNIVERSE as usize);
        assert!((dems as i64 - reps as i64).abs() <= 1);
        assert_eq!(s.party_of(EventId(0)), Party::Democrat);
        assert_eq!(s.party_of(EventId(1)), Party::Republican);
    }

    #[test]
    fn national_moments_produce_party_bursts() {
        // At the RNC day, total Republican burstiness should clearly exceed
        // the quiet-period level.
        let s = generate(PoliticsConfig { total_elements: 300_000, skew: 1.0, seed: 4 });
        let baseline = ExactBaseline::from_stream(&s.stream);
        let tau = BurstSpan::DAY_SECONDS;
        let sum_party_burstiness = |day: u64| -> (i64, i64) {
            let t = Timestamp(day * 86_400 + 43_200);
            let mut dem = 0i64;
            let mut rep = 0i64;
            for e in baseline.events().collect::<Vec<_>>() {
                let b = baseline.point_query(e, t, tau);
                match s.party_of(e) {
                    Party::Democrat => dem += b.max(0),
                    Party::Republican => rep += b.max(0),
                }
            }
            (dem, rep)
        };
        let (_, rep_rnc) = sum_party_burstiness(48);
        let (_, rep_quiet) = sum_party_burstiness(30);
        assert!(rep_rnc > rep_quiet * 2, "RNC {rep_rnc} vs quiet {rep_quiet}");
    }

    #[test]
    fn reproducible_by_seed() {
        let a = generate(PoliticsConfig { total_elements: 10_000, skew: 1.1, seed: 9 });
        let b = generate(PoliticsConfig { total_elements: 10_000, skew: 1.1, seed: 9 });
        assert_eq!(a.stream, b.stream);
    }
}
