//! `bed` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        println!("{}", bed_cli::usage());
        return;
    }
    match bed_cli::run(args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
