//! `bed` binary entry point.
//!
//! The only unsafe code in the workspace lives here: installing
//! `SIGTERM`/`SIGINT` handlers through the C `signal` entry point so
//! `bed serve` can shut down cleanly (the library half keeps
//! `forbid(unsafe_code)`). The handler body is async-signal-safe — one
//! atomic store.

use std::os::raw::c_int;

extern "C" {
    fn signal(signum: c_int, handler: usize) -> usize;
}

extern "C" fn on_terminate(_signum: c_int) {
    bed_cli::serve::request_shutdown();
}

/// Routes `SIGTERM`/`SIGINT` to the serve loop's shutdown flag. Installed
/// only for `bed serve`: every other command keeps the default "terminate
/// now" disposition.
fn install_termination_handlers() {
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    // SAFETY: `on_terminate` performs a single atomic store, which is
    // async-signal-safe, and `signal` is handed a valid handler pointer.
    let handler = on_terminate as extern "C" fn(c_int) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        println!("{}", bed_cli::usage());
        return;
    }
    if args[0] == "serve" {
        install_termination_handlers();
    }
    match bed_cli::run(args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
