//! Hand-rolled argument parsing (the CLI's option surface is small enough
//! that a dependency-free parser is simpler than pulling one in).

use std::collections::BTreeMap;

use crate::CliError;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `bed generate` — synthesise a workload.
    Generate {
        /// `olympics` or `politics`.
        dataset: String,
        /// Target element count.
        n: u64,
        /// RNG seed.
        seed: u64,
        /// Output TSV path.
        out: String,
    },
    /// `bed build` — build and persist a sketch.
    Build {
        /// Input TSV path.
        input: String,
        /// Output sketch path.
        out: String,
        /// Detector construction options.
        flags: DetectorFlags,
    },
    /// `bed info` — describe a persisted sketch.
    Info {
        /// Sketch path.
        sketch: String,
    },
    /// `bed point` — point query.
    Point {
        /// Sketch path.
        sketch: String,
        /// Event id.
        event: u32,
        /// Query instant.
        t: u64,
        /// Burst span τ.
        tau: u64,
        /// Append a metrics snapshot to the output.
        metrics: bool,
        /// Append a per-stage EXPLAIN breakdown to the output.
        explain: bool,
    },
    /// `bed times` — bursty-time query.
    Times {
        /// Sketch path.
        sketch: String,
        /// Event id.
        event: u32,
        /// Threshold θ.
        theta: f64,
        /// Burst span τ.
        tau: u64,
        /// Horizon.
        horizon: u64,
        /// Append a metrics snapshot to the output.
        metrics: bool,
        /// Append a per-stage EXPLAIN breakdown to the output.
        explain: bool,
    },
    /// `bed events` — bursty-event query.
    Events {
        /// Sketch path.
        sketch: String,
        /// Query instant.
        t: u64,
        /// Threshold θ.
        theta: f64,
        /// Burst span τ.
        tau: u64,
        /// Exhaustive scan instead of the pruned dyadic search.
        scan: bool,
        /// Append a metrics snapshot to the output.
        metrics: bool,
        /// Append a per-stage EXPLAIN breakdown to the output.
        explain: bool,
    },
    /// `bed ranges` — interval bursty-time query (single-event sketches).
    Ranges {
        /// Sketch path.
        sketch: String,
        /// Threshold θ.
        theta: f64,
        /// Burst span τ.
        tau: u64,
        /// Horizon.
        horizon: u64,
    },
    /// `bed series` — burstiness time series of one event.
    Series {
        /// Sketch path.
        sketch: String,
        /// Event id.
        event: u32,
        /// Burst span τ.
        tau: u64,
        /// Horizon.
        horizon: u64,
        /// Sample step in ticks.
        step: u64,
        /// Append a metrics snapshot to the output.
        metrics: bool,
        /// Append a per-stage EXPLAIN breakdown to the output.
        explain: bool,
    },
    /// `bed stats` — metrics snapshot of a persisted sketch.
    Stats {
        /// Sketch path.
        sketch: String,
        /// Output rendering.
        format: StatsFormat,
    },
    /// `bed serve` — HTTP scrape endpoint over a live ingest.
    Serve {
        /// Input TSV stream drained by the background ingest thread.
        input: String,
        /// Listen address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Detector construction options.
        flags: DetectorFlags,
        /// Trace 1 in N queries (0 disables tracing).
        sample: u64,
        /// Slow-query capture threshold in nanoseconds (0 captures every
        /// traced query).
        slow_threshold_ns: u64,
        /// θ for the periodic watch query.
        watch_theta: f64,
        /// τ for the periodic watch query.
        watch_tau: u64,
        /// Milliseconds between watch queries (0 disables the watcher).
        watch_every_ms: u64,
        /// Publish a query epoch every this many arrivals (`/query`
        /// answers from the latest published epoch).
        publish_every: u64,
        /// Milliseconds between self-profiler samples (0 disables).
        profile_every_ms: u64,
        /// Milliseconds the ingest thread waits before draining (leaves a
        /// pre-genesis window in which `/readyz` reports 503).
        ingest_delay_ms: u64,
        /// Directory `/readyz` probes for writability (omit to skip).
        state_dir: Option<String>,
    },
    /// `bed trace` — fetch recent spans (or one assembled trace) from a
    /// running `bed serve`.
    Trace {
        /// Server address (`host:port`).
        addr: String,
        /// Trace id to assemble (`/trace/<id>`); omit for `/trace/recent`.
        id: Option<String>,
    },
    /// `bed profile` — fetch the self-profiler's folded-stack dump from a
    /// running `bed serve`.
    Profile {
        /// Server address (`host:port`).
        addr: String,
    },
    /// `bed ingest` — durable build: WAL every arrival, checkpoint
    /// periodically, survive a kill at any instant.
    Ingest {
        /// Input TSV path.
        input: String,
        /// Snapshot (checkpoint) path.
        out: String,
        /// Write-ahead-log path.
        wal: String,
        /// Checkpoint every this many arrivals.
        every: u64,
        /// Detector construction options.
        flags: DetectorFlags,
    },
    /// `bed checkpoint` — wrap an existing sketch in a BEDS v2 snapshot.
    Checkpoint {
        /// Sketch (or snapshot) path to read.
        sketch: String,
        /// Snapshot path to write.
        out: String,
    },
    /// `bed restore` — recover a detector from a snapshot + WAL tail.
    Restore {
        /// Snapshot path (the store also consults `<path>.prev`).
        snapshot: String,
        /// Write-ahead-log path to replay past the watermark.
        wal: Option<String>,
        /// Where to write the recovered, finalized sketch.
        out: String,
        /// Existing sketch whose configuration the recovered state must
        /// match (refuses with a config diff otherwise).
        onto: Option<String>,
    },
}

/// Output format for `bed stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// One JSON object (the default).
    Json,
    /// Aligned human-readable text.
    Text,
    /// OpenMetrics text exposition — the exact bytes `bed serve` puts on
    /// the `/metrics` wire, for offline snapshots.
    OpenMetrics,
}

/// Detector-construction options shared by `build`, `ingest`, and `serve`.
/// One parse helper (`detector_flags`) feeds all three, so defaults and
/// validation cannot drift between the commands.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorFlags {
    /// `pbe1` or `pbe2`.
    pub variant: String,
    /// η for pbe1.
    pub eta: usize,
    /// γ for pbe2.
    pub gamma: f64,
    /// Universe size K (omit for single-event mode).
    pub universe: Option<u32>,
    /// Count-Min ε.
    pub epsilon: f64,
    /// Count-Min δ.
    pub delta: f64,
    /// Disable the dyadic hierarchy.
    pub flat: bool,
    /// Hash seed.
    pub seed: u64,
    /// Shard count for parallel ingestion (1 = unsharded).
    pub shards: usize,
    /// Tiered retention policy (`window:budget[:every]`); `None` keeps
    /// the full-resolution history forever.
    pub retention: Option<bed_core::RetentionPolicy>,
}

/// Splits `--key value` pairs after the subcommand.
fn options<I: Iterator<Item = String>>(rest: I) -> Result<BTreeMap<String, String>, CliError> {
    let mut map = BTreeMap::new();
    let mut iter = rest.peekable();
    while let Some(key) = iter.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(CliError::Usage(format!("expected --option, found '{key}'")));
        };
        // boolean flags take no value
        if matches!(name, "flat" | "metrics" | "scan" | "text" | "explain") {
            map.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = iter.next() else {
            return Err(CliError::Usage(format!("--{name} requires a value")));
        };
        if map.insert(name.to_string(), value).is_some() {
            return Err(CliError::Usage(format!("--{name} given twice")));
        }
    }
    Ok(map)
}

struct Opts {
    map: BTreeMap<String, String>,
    command: &'static str,
}

impl Opts {
    fn required(&mut self, name: &str) -> Result<String, CliError> {
        self.map
            .remove(name)
            .ok_or_else(|| CliError::Usage(format!("{}: --{name} is required", self.command)))
    }

    fn optional(&mut self, name: &str) -> Option<String> {
        self.map.remove(name)
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, raw: &str) -> Result<T, CliError> {
        raw.parse().map_err(|_| {
            CliError::Usage(format!("{}: --{name} '{raw}' is not a valid number", self.command))
        })
    }

    fn required_num<T: std::str::FromStr>(&mut self, name: &str) -> Result<T, CliError> {
        let raw = self.required(name)?;
        self.parse_num(name, &raw)
    }

    fn optional_num<T: std::str::FromStr>(
        &mut self,
        name: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.optional(name) {
            Some(raw) => self.parse_num(name, &raw),
            None => Ok(default),
        }
    }

    fn finish(self) -> Result<(), CliError> {
        if let Some(extra) = self.map.keys().next() {
            return Err(CliError::Usage(format!("{}: unknown option --{extra}", self.command)));
        }
        Ok(())
    }
}

/// Parses the detector-construction option block shared by `build`,
/// `ingest`, and `serve` (variant/accuracy/universe/seed/shards).
fn detector_flags(o: &mut Opts) -> Result<DetectorFlags, CliError> {
    let variant = o.optional("variant").unwrap_or_else(|| "pbe2".into());
    if variant != "pbe1" && variant != "pbe2" {
        return Err(CliError::Usage(format!(
            "{}: --variant must be 'pbe1' or 'pbe2', got '{variant}'",
            o.command
        )));
    }
    let eta = o.optional_num("eta", 128usize)?;
    let gamma = o.optional_num("gamma", 8.0f64)?;
    let universe = match o.optional("universe") {
        Some(raw) => Some(o.parse_num("universe", &raw)?),
        None => None,
    };
    let epsilon = o.optional_num("epsilon", 0.005f64)?;
    let delta = o.optional_num("delta", 0.02f64)?;
    let flat = o.optional("flat").is_some();
    let seed = o.optional_num("seed", 0xBEDu64)?;
    let shards = o.optional_num("shards", 1usize)?;
    if shards == 0 {
        return Err(CliError::Usage(format!("{}: --shards must be at least 1", o.command)));
    }
    if shards > 1 && universe.is_none() {
        return Err(CliError::Usage(format!(
            "{}: --shards partitions an event universe; add --universe K",
            o.command
        )));
    }
    let retention = match o.optional("retention") {
        Some(raw) => Some(
            bed_core::RetentionPolicy::parse(&raw)
                .map_err(|e| CliError::Usage(format!("{}: --retention '{raw}': {e}", o.command)))?,
        ),
        None => None,
    };
    Ok(DetectorFlags {
        variant,
        eta,
        gamma,
        universe,
        epsilon,
        delta,
        flat,
        seed,
        shards,
        retention,
    })
}

/// Parses a full argument vector (without the program name).
pub fn parse<I, S>(argv: I) -> Result<Command, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut iter = argv.into_iter().map(Into::into);
    let Some(sub) = iter.next() else {
        return Err(CliError::Usage(
            "missing command; try: generate, build, info, point, times, events".into(),
        ));
    };
    let map = options(iter)?;
    match sub.as_str() {
        "generate" => {
            let mut o = Opts { map, command: "generate" };
            let dataset = o.optional("dataset").unwrap_or_else(|| "olympics".into());
            if dataset != "olympics" && dataset != "politics" {
                return Err(CliError::Usage(format!(
                    "generate: --dataset must be 'olympics' or 'politics', got '{dataset}'"
                )));
            }
            let n = o.optional_num("n", 200_000u64)?;
            let seed = o.optional_num("seed", 2016u64)?;
            let out = o.required("out")?;
            o.finish()?;
            Ok(Command::Generate { dataset, n, seed, out })
        }
        "build" => {
            let mut o = Opts { map, command: "build" };
            let input = o.required("input")?;
            let out = o.required("out")?;
            let flags = detector_flags(&mut o)?;
            o.finish()?;
            Ok(Command::Build { input, out, flags })
        }
        "info" => {
            let mut o = Opts { map, command: "info" };
            let sketch = o.required("sketch")?;
            o.finish()?;
            Ok(Command::Info { sketch })
        }
        "point" => {
            let mut o = Opts { map, command: "point" };
            let sketch = o.required("sketch")?;
            let event = o.optional_num("event", 0u32)?;
            let t = o.required_num("t")?;
            let tau = o.optional_num("tau", 86_400u64)?;
            let metrics = o.optional("metrics").is_some();
            let explain = o.optional("explain").is_some();
            o.finish()?;
            Ok(Command::Point { sketch, event, t, tau, metrics, explain })
        }
        "times" => {
            let mut o = Opts { map, command: "times" };
            let sketch = o.required("sketch")?;
            let event = o.optional_num("event", 0u32)?;
            let theta = o.required_num("theta")?;
            let tau = o.optional_num("tau", 86_400u64)?;
            let horizon = o.required_num("horizon")?;
            let metrics = o.optional("metrics").is_some();
            let explain = o.optional("explain").is_some();
            o.finish()?;
            Ok(Command::Times { sketch, event, theta, tau, horizon, metrics, explain })
        }
        "events" => {
            let mut o = Opts { map, command: "events" };
            let sketch = o.required("sketch")?;
            let t = o.required_num("t")?;
            let theta = o.required_num("theta")?;
            let tau = o.optional_num("tau", 86_400u64)?;
            let scan = o.optional("scan").is_some();
            let metrics = o.optional("metrics").is_some();
            let explain = o.optional("explain").is_some();
            o.finish()?;
            Ok(Command::Events { sketch, t, theta, tau, scan, metrics, explain })
        }
        "ranges" => {
            let mut o = Opts { map, command: "ranges" };
            let sketch = o.required("sketch")?;
            let theta = o.required_num("theta")?;
            let tau = o.optional_num("tau", 86_400u64)?;
            let horizon = o.required_num("horizon")?;
            o.finish()?;
            Ok(Command::Ranges { sketch, theta, tau, horizon })
        }
        "series" => {
            let mut o = Opts { map, command: "series" };
            let sketch = o.required("sketch")?;
            let event = o.optional_num("event", 0u32)?;
            let tau = o.optional_num("tau", 86_400u64)?;
            let horizon = o.required_num("horizon")?;
            let step = o.optional_num("step", 86_400u64)?;
            if step == 0 {
                return Err(CliError::Usage("series: --step must be positive".into()));
            }
            let metrics = o.optional("metrics").is_some();
            let explain = o.optional("explain").is_some();
            o.finish()?;
            Ok(Command::Series { sketch, event, tau, horizon, step, metrics, explain })
        }
        "stats" => {
            let mut o = Opts { map, command: "stats" };
            let sketch = o.required("sketch")?;
            let text = o.optional("text").is_some();
            let format = match o.optional("format") {
                None if text => StatsFormat::Text,
                None => StatsFormat::Json,
                Some(_) if text => {
                    return Err(CliError::Usage(
                        "stats: --text conflicts with --format (it is shorthand for --format text)"
                            .into(),
                    ));
                }
                Some(f) => match f.as_str() {
                    "json" => StatsFormat::Json,
                    "text" => StatsFormat::Text,
                    "openmetrics" => StatsFormat::OpenMetrics,
                    other => {
                        return Err(CliError::Usage(format!(
                            "stats: --format must be 'json', 'text', or 'openmetrics', got '{other}'"
                        )));
                    }
                },
            };
            o.finish()?;
            Ok(Command::Stats { sketch, format })
        }
        "serve" => {
            let mut o = Opts { map, command: "serve" };
            let input = o.required("input")?;
            let addr = o.optional("addr").unwrap_or_else(|| "127.0.0.1:9184".into());
            let flags = detector_flags(&mut o)?;
            let sample = o.optional_num("sample", 1u64)?;
            let slow_threshold_ns = o.optional_num("slow-threshold-ns", 10_000_000u64)?;
            let watch_theta = o.optional_num("watch-theta", 10.0f64)?;
            let watch_tau = o.optional_num("watch-tau", 86_400u64)?;
            if watch_tau == 0 {
                return Err(CliError::Usage("serve: --watch-tau must be positive".into()));
            }
            let watch_every_ms = o.optional_num("watch-every-ms", 500u64)?;
            let publish_every = o.optional_num("publish-every", 8_192u64)?;
            if publish_every == 0 {
                return Err(CliError::Usage("serve: --publish-every must be positive".into()));
            }
            let profile_every_ms = o.optional_num("profile-every-ms", 200u64)?;
            let ingest_delay_ms = o.optional_num("ingest-delay-ms", 0u64)?;
            let state_dir = o.optional("state-dir");
            o.finish()?;
            Ok(Command::Serve {
                input,
                addr,
                flags,
                sample,
                slow_threshold_ns,
                watch_theta,
                watch_tau,
                watch_every_ms,
                publish_every,
                profile_every_ms,
                ingest_delay_ms,
                state_dir,
            })
        }
        "trace" => {
            let mut o = Opts { map, command: "trace" };
            let addr = o.required("addr")?;
            let id = o.optional("id");
            o.finish()?;
            Ok(Command::Trace { addr, id })
        }
        "profile" => {
            let mut o = Opts { map, command: "profile" };
            let addr = o.required("addr")?;
            o.finish()?;
            Ok(Command::Profile { addr })
        }
        "ingest" => {
            let mut o = Opts { map, command: "ingest" };
            let input = o.required("input")?;
            let out = o.required("out")?;
            let wal = o.required("wal")?;
            let every = o.optional_num("every", 65_536u64)?;
            if every == 0 {
                return Err(CliError::Usage("ingest: --every must be positive".into()));
            }
            let flags = detector_flags(&mut o)?;
            o.finish()?;
            Ok(Command::Ingest { input, out, wal, every, flags })
        }
        "checkpoint" => {
            let mut o = Opts { map, command: "checkpoint" };
            let sketch = o.required("sketch")?;
            let out = o.required("out")?;
            o.finish()?;
            Ok(Command::Checkpoint { sketch, out })
        }
        "restore" => {
            let mut o = Opts { map, command: "restore" };
            let snapshot = o.required("snapshot")?;
            let wal = o.optional("wal");
            let out = o.required("out")?;
            let onto = o.optional("onto");
            o.finish()?;
            Ok(Command::Restore { snapshot, wal, out, onto })
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'; try: generate, build, ingest, info, point, times, events, ranges, series, stats, serve, trace, profile, checkpoint, restore"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Command {
        parse(args.iter().copied()).unwrap()
    }

    #[test]
    fn generate_defaults_and_overrides() {
        let c = parse_ok(&["generate", "--out", "x.tsv"]);
        assert_eq!(
            c,
            Command::Generate {
                dataset: "olympics".into(),
                n: 200_000,
                seed: 2016,
                out: "x.tsv".into()
            }
        );
        let c = parse_ok(&[
            "generate",
            "--dataset",
            "politics",
            "--n",
            "5",
            "--seed",
            "1",
            "--out",
            "y",
        ]);
        assert!(matches!(c, Command::Generate { n: 5, seed: 1, .. }));
    }

    #[test]
    fn build_full_surface() {
        let c = parse_ok(&[
            "build",
            "--input",
            "a.tsv",
            "--out",
            "a.bed",
            "--variant",
            "pbe1",
            "--eta",
            "64",
            "--universe",
            "864",
            "--epsilon",
            "0.01",
            "--delta",
            "0.05",
            "--flat",
            "--seed",
            "9",
            "--shards",
            "4",
        ]);
        assert_eq!(
            c,
            Command::Build {
                input: "a.tsv".into(),
                out: "a.bed".into(),
                flags: DetectorFlags {
                    variant: "pbe1".into(),
                    eta: 64,
                    gamma: 8.0,
                    universe: Some(864),
                    epsilon: 0.01,
                    delta: 0.05,
                    flat: true,
                    seed: 9,
                    shards: 4,
                    retention: None,
                },
            }
        );
    }

    #[test]
    fn retention_flag_parses_and_rejects_garbage() {
        let base = ["build", "--input", "a", "--out", "b"];
        let with = |extra: &[&str]| parse(base.iter().chain(extra).copied().collect::<Vec<_>>());
        // absent -> unbounded history
        let Command::Build { flags, .. } = with(&[]).unwrap() else { panic!("expected build") };
        assert_eq!(flags.retention, None);
        // window:budget form (default cadence)
        let Command::Build { flags, .. } = with(&["--retention", "86400:256"]).unwrap() else {
            panic!("expected build")
        };
        let p = flags.retention.expect("policy");
        assert_eq!((p.window, p.budget), (86_400, 256));
        assert_eq!(p.compact_every, bed_core::RetentionPolicy::DEFAULT_COMPACT_EVERY);
        // window:budget:every form
        let Command::Build { flags, .. } = with(&["--retention", "3600:64:1024"]).unwrap() else {
            panic!("expected build")
        };
        assert_eq!(flags.retention, bed_core::RetentionPolicy::new(3600, 64, 1024).ok());
        // malformed specs surface as usage errors naming the flag
        for bad in ["", "86400", "0:4", "10:0", "10:4:0", "x:y"] {
            let e = with(&["--retention", bad]).unwrap_err().to_string();
            assert!(e.contains("--retention"), "{bad}: {e}");
        }
        // the same flag reaches ingest and serve through the shared parser
        let c = parse_ok(&[
            "ingest",
            "--input",
            "a",
            "--out",
            "b",
            "--wal",
            "w",
            "--retention",
            "100:8",
        ]);
        assert!(
            matches!(&c, Command::Ingest { flags: DetectorFlags { retention: Some(_), .. }, .. }),
            "{c:?}"
        );
        let c = parse_ok(&["serve", "--input", "s.tsv", "--retention", "100:8"]);
        assert!(
            matches!(&c, Command::Serve { flags: DetectorFlags { retention: Some(_), .. }, .. }),
            "{c:?}"
        );
    }

    #[test]
    fn malformed_subcommand_is_an_error_not_a_panic() {
        // a typo'd subcommand must surface as Err(CliError::Usage), never abort
        let err = parse(["bui1d", "--input", "a.tsv", "--out", "a.bed"]).unwrap_err();
        assert!(matches!(&err, CliError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("unknown command 'bui1d'"), "{err}");
    }

    #[test]
    fn shard_flag_is_validated() {
        let base = ["build", "--input", "a", "--out", "b", "--universe", "8"];
        let with = |extra: &[&str]| parse(base.iter().chain(extra).copied().collect::<Vec<_>>());
        assert!(matches!(
            with(&[]).unwrap(),
            Command::Build { flags: DetectorFlags { shards: 1, .. }, .. }
        ));
        assert!(matches!(
            with(&["--shards", "8"]).unwrap(),
            Command::Build { flags: DetectorFlags { shards: 8, .. }, .. }
        ));
        let e = with(&["--shards", "0"]).unwrap_err().to_string();
        assert!(e.contains("at least 1"), "{e}");
        let e = parse(["build", "--input", "a", "--out", "b", "--shards", "2"])
            .unwrap_err()
            .to_string();
        assert!(e.contains("--universe"), "{e}");
    }

    #[test]
    fn errors_are_descriptive() {
        let e = parse(["build", "--out", "x"]).unwrap_err().to_string();
        assert!(e.contains("--input"), "{e}");
        let e = parse(["point", "--sketch", "s", "--t"]).unwrap_err().to_string();
        assert!(e.contains("requires a value"), "{e}");
        let e = parse(["frobnicate"]).unwrap_err().to_string();
        assert!(e.contains("unknown command"), "{e}");
        let e = parse(["info", "--sketch", "a", "--bogus", "1"]).unwrap_err().to_string();
        assert!(e.contains("unknown option"), "{e}");
        let e = parse(["generate", "--out", "x", "--n", "NaNaN"]).unwrap_err().to_string();
        assert!(e.contains("not a valid number"), "{e}");
        let e = parse(["generate", "--out", "x", "--out", "y"]).unwrap_err().to_string();
        assert!(e.contains("twice"), "{e}");
        let e = parse(Vec::<String>::new()).unwrap_err().to_string();
        assert!(e.contains("missing command"), "{e}");
    }

    #[test]
    fn query_commands() {
        let c = parse_ok(&["point", "--sketch", "s.bed", "--event", "3", "--t", "100"]);
        assert_eq!(
            c,
            Command::Point {
                sketch: "s.bed".into(),
                event: 3,
                t: 100,
                tau: 86_400,
                metrics: false,
                explain: false
            }
        );
        let c = parse_ok(&["times", "--sketch", "s", "--theta", "5.5", "--horizon", "99"]);
        assert!(matches!(c, Command::Times { theta, horizon: 99, .. } if theta == 5.5));
        let c = parse_ok(&["events", "--sketch", "s", "--t", "7", "--theta", "2"]);
        assert!(matches!(c, Command::Events { t: 7, scan: false, metrics: false, .. }));
    }

    #[test]
    fn durability_commands() {
        let c = parse_ok(&["ingest", "--input", "a.tsv", "--out", "s.beds", "--wal", "a.wal"]);
        assert!(
            matches!(
                &c,
                Command::Ingest {
                    every: 65_536,
                    flags: DetectorFlags { shards: 1, universe: None, .. },
                    ..
                }
            ),
            "{c:?}"
        );
        let c = parse_ok(&[
            "ingest",
            "--input",
            "a.tsv",
            "--out",
            "s.beds",
            "--wal",
            "a.wal",
            "--every",
            "100",
            "--universe",
            "8",
            "--shards",
            "4",
        ]);
        assert!(
            matches!(
                &c,
                Command::Ingest { every: 100, flags: DetectorFlags { shards: 4, .. }, .. }
            ),
            "{c:?}"
        );
        let e = parse(["ingest", "--input", "a", "--out", "b"]).unwrap_err().to_string();
        assert!(e.contains("--wal"), "{e}");
        let e = parse(["ingest", "--input", "a", "--out", "b", "--wal", "w", "--every", "0"])
            .unwrap_err()
            .to_string();
        assert!(e.contains("positive"), "{e}");
        let e = parse(["ingest", "--input", "a", "--out", "b", "--wal", "w", "--shards", "2"])
            .unwrap_err()
            .to_string();
        assert!(e.contains("--universe"), "{e}");

        let c = parse_ok(&["checkpoint", "--sketch", "s.bed", "--out", "s.beds"]);
        assert_eq!(c, Command::Checkpoint { sketch: "s.bed".into(), out: "s.beds".into() });

        let c = parse_ok(&["restore", "--snapshot", "s.beds", "--out", "r.bed"]);
        assert_eq!(
            c,
            Command::Restore {
                snapshot: "s.beds".into(),
                wal: None,
                out: "r.bed".into(),
                onto: None
            }
        );
        let c = parse_ok(&[
            "restore",
            "--snapshot",
            "s.beds",
            "--wal",
            "a.wal",
            "--out",
            "r.bed",
            "--onto",
            "other.bed",
        ]);
        assert!(matches!(&c, Command::Restore { wal: Some(_), onto: Some(_), .. }), "{c:?}");
        let e = parse(["restore", "--snapshot", "s"]).unwrap_err().to_string();
        assert!(e.contains("--out"), "{e}");
    }

    #[test]
    fn metrics_and_stats_flags() {
        let c = parse_ok(&["point", "--sketch", "s", "--t", "1", "--metrics"]);
        assert!(matches!(c, Command::Point { metrics: true, explain: false, .. }));
        let c = parse_ok(&["point", "--sketch", "s", "--t", "1", "--explain"]);
        assert!(matches!(c, Command::Point { metrics: false, explain: true, .. }));
        let c = parse_ok(&["events", "--sketch", "s", "--t", "1", "--theta", "2", "--scan"]);
        assert!(matches!(c, Command::Events { scan: true, .. }));
        let c = parse_ok(&["events", "--sketch", "s", "--t", "1", "--theta", "2", "--explain"]);
        assert!(matches!(c, Command::Events { explain: true, .. }));
        let c =
            parse_ok(&["series", "--sketch", "s", "--horizon", "9", "--step", "3", "--explain"]);
        assert!(matches!(c, Command::Series { explain: true, .. }));
        let c = parse_ok(&["stats", "--sketch", "s"]);
        assert_eq!(c, Command::Stats { sketch: "s".into(), format: StatsFormat::Json });
        let c = parse_ok(&["stats", "--sketch", "s", "--text"]);
        assert!(matches!(c, Command::Stats { format: StatsFormat::Text, .. }));
        let e = parse(["stats"]).unwrap_err().to_string();
        assert!(e.contains("--sketch"), "{e}");
    }

    #[test]
    fn stats_format_selection() {
        for (raw, want) in [
            ("json", StatsFormat::Json),
            ("text", StatsFormat::Text),
            ("openmetrics", StatsFormat::OpenMetrics),
        ] {
            let c = parse_ok(&["stats", "--sketch", "s", "--format", raw]);
            assert!(matches!(c, Command::Stats { format, .. } if format == want), "{raw}");
        }
        let e = parse(["stats", "--sketch", "s", "--format", "xml"]).unwrap_err().to_string();
        assert!(e.contains("openmetrics"), "{e}");
        let e = parse(["stats", "--sketch", "s", "--text", "--format", "json"])
            .unwrap_err()
            .to_string();
        assert!(e.contains("conflicts"), "{e}");
    }

    #[test]
    fn serve_defaults_and_shared_detector_flags() {
        let c = parse_ok(&["serve", "--input", "s.tsv", "--universe", "8"]);
        let Command::Serve {
            input,
            addr,
            flags,
            sample,
            slow_threshold_ns,
            watch_every_ms,
            publish_every,
            profile_every_ms,
            ingest_delay_ms,
            state_dir,
            ..
        } = c
        else {
            panic!("expected serve");
        };
        assert_eq!(input, "s.tsv");
        assert_eq!(addr, "127.0.0.1:9184");
        assert_eq!(flags.universe, Some(8));
        assert_eq!(flags.shards, 1);
        assert_eq!(sample, 1);
        assert_eq!(slow_threshold_ns, 10_000_000);
        assert_eq!(watch_every_ms, 500);
        assert_eq!(publish_every, 8_192);
        assert_eq!(profile_every_ms, 200);
        assert_eq!(ingest_delay_ms, 0);
        assert_eq!(state_dir, None);

        let c = parse_ok(&[
            "serve",
            "--input",
            "s.tsv",
            "--addr",
            "0.0.0.0:0",
            "--universe",
            "16",
            "--shards",
            "4",
            "--flat",
            "--sample",
            "8",
            "--slow-threshold-ns",
            "0",
            "--watch-theta",
            "2.5",
            "--watch-tau",
            "60",
            "--watch-every-ms",
            "50",
            "--publish-every",
            "1024",
        ]);
        let Command::Serve {
            flags,
            sample,
            slow_threshold_ns,
            watch_theta,
            watch_tau,
            publish_every,
            ..
        } = c
        else {
            panic!("expected serve");
        };
        assert!(flags.flat && flags.shards == 4);
        assert_eq!((sample, slow_threshold_ns), (8, 0));
        assert_eq!((watch_theta, watch_tau), (2.5, 60));
        assert_eq!(publish_every, 1024);

        // serve shares build/ingest's detector-flag validation
        let e = parse(["serve", "--input", "s", "--shards", "2"]).unwrap_err().to_string();
        assert!(e.contains("--universe"), "{e}");
        let e = parse(["serve", "--input", "s", "--variant", "pbe9"]).unwrap_err().to_string();
        assert!(e.contains("pbe1"), "{e}");
        let e = parse(["serve", "--input", "s", "--watch-tau", "0"]).unwrap_err().to_string();
        assert!(e.contains("positive"), "{e}");
        let e = parse(["serve", "--input", "s", "--publish-every", "0"]).unwrap_err().to_string();
        assert!(e.contains("positive"), "{e}");
    }

    #[test]
    fn serve_observability_knobs_parse() {
        let c = parse_ok(&[
            "serve",
            "--input",
            "s.tsv",
            "--profile-every-ms",
            "50",
            "--ingest-delay-ms",
            "250",
            "--state-dir",
            "/tmp/bed",
        ]);
        let Command::Serve { profile_every_ms, ingest_delay_ms, state_dir, .. } = c else {
            panic!("expected serve");
        };
        assert_eq!(profile_every_ms, 50);
        assert_eq!(ingest_delay_ms, 250);
        assert_eq!(state_dir.as_deref(), Some("/tmp/bed"));
    }

    #[test]
    fn trace_and_profile_commands_parse() {
        let c = parse_ok(&["trace", "--addr", "127.0.0.1:9184"]);
        assert_eq!(c, Command::Trace { addr: "127.0.0.1:9184".into(), id: None });
        let c = parse_ok(&["trace", "--addr", "127.0.0.1:9184", "--id", "0000000000abc123"]);
        assert!(matches!(c, Command::Trace { id: Some(ref i), .. } if i == "0000000000abc123"));
        let c = parse_ok(&["profile", "--addr", "127.0.0.1:9184"]);
        assert_eq!(c, Command::Profile { addr: "127.0.0.1:9184".into() });
        let e = parse(["trace"]).unwrap_err().to_string();
        assert!(e.contains("--addr"), "{e}");
        let e = parse(["profile"]).unwrap_err().to_string();
        assert!(e.contains("--addr"), "{e}");
    }
}
