//! Command execution.

use std::fmt::Write as _;
use std::fs;

use bed_core::{
    AnyDetector, BurstDetector, EventSink as _, PbeVariant, QueryRequest, QueryResponse,
    QueryScratch, QueryStrategy, Snapshot, SnapshotStore,
};
use bed_stream::{BurstSpan, Codec, EventId, Timestamp};
use bed_workload::{olympics, politics};

use crate::args::{Command, DetectorFlags, StatsFormat};
use crate::CliError;

/// A persisted sketch of any format: `BEDD`, `BEDS v1`, or a `BEDS v2`
/// snapshot envelope (whose embedded detector is unwrapped). The commands
/// are agnostic of the physical layout and of whether the file was a
/// checkpoint.
type AnySketch = AnyDetector;

/// Runs one query through the scratch-reusing fast path. Each command
/// owns a single [`QueryScratch`], so even multi-probe queries (series,
/// bursty-events scans) stay off the per-probe allocator.
fn run_query(
    det: &AnySketch,
    request: &QueryRequest,
    scratch: &mut QueryScratch,
) -> Result<QueryResponse, bed_core::BedError> {
    det.queries().query_reusing(request, scratch)
}

fn bursty_time_ranges(
    det: &AnySketch,
    theta: f64,
    tau: BurstSpan,
    horizon: Timestamp,
) -> Result<Vec<bed_core::TimeRange>, bed_core::BedError> {
    match det {
        AnyDetector::Plain(d) => d.bursty_time_ranges(theta, tau, horizon),
        AnyDetector::Sharded(_) => Err(bed_core::BedError::WrongMode {
            operation: "bursty_time_ranges",
            built_for: "mixed event streams (use bursty_times)",
        }),
    }
}

/// The query answered a different variant than asked — impossible per the
/// [`BurstQueries`] contract, surfaced as an error rather than a panic.
fn mismatched() -> CliError {
    CliError::BadInput("internal: query response variant mismatch".into())
}

/// Appends a text-rendered metrics snapshot when `--metrics` was given.
fn append_metrics(out: &mut String, det: &AnySketch, wanted: bool) {
    if wanted {
        out.push_str("\nmetrics:\n");
        out.push_str(&det.queries().metrics().to_text());
    }
}

/// Appends the `--explain` breakdown: per-stage kernel nanoseconds
/// harvested from the armed scratch, the probe path taken, and the total.
/// Mirrors the `/query?explain=1` block in aligned text form.
fn append_explain(out: &mut String, det: &AnySketch, scratch: &QueryScratch, root_ns: u64) {
    let st = &scratch.stages;
    let path = if st.bank_probes > 0 {
        "soa bank"
    } else if st.scalar_probes > 0 {
        "scalar"
    } else if det.soa_bank_bytes() > 0 {
        "soa bank"
    } else {
        "scalar"
    };
    out.push_str("\nexplain:\n");
    writeln!(out, " root               {root_ns} ns").expect("string write");
    writeln!(out, " cell probe         {} ns", st.cell_probe_ns).expect("string write");
    writeln!(out, " median combine     {} ns", st.median_combine_ns).expect("string write");
    writeln!(out, " hierarchy prune    {} ns", st.hierarchy_prune_ns).expect("string write");
    writeln!(
        out,
        " probe path         {path} ({} bank / {} scalar probes)",
        st.bank_probes, st.scalar_probes
    )
    .expect("string write");
}

/// Runs `request` with EXPLAIN arming when asked: the scratch's explain
/// flag makes the query layer arm stage timing and leave the populated
/// accumulators for [`append_explain`] to harvest. Returns the response
/// and the wall-clock nanoseconds of the whole query call.
fn run_query_explained(
    det: &AnySketch,
    request: &QueryRequest,
    scratch: &mut QueryScratch,
    explain: bool,
) -> Result<(QueryResponse, u64), bed_core::BedError> {
    scratch.explain = explain;
    let started = std::time::Instant::now();
    let response = run_query(det, request, scratch)?;
    Ok((response, started.elapsed().as_nanos() as u64))
}

/// Executes a parsed command, returning its stdout text.
pub fn execute(command: Command) -> Result<String, CliError> {
    match command {
        Command::Generate { dataset, n, seed, out } => generate(&dataset, n, seed, &out),
        Command::Build { input, out, flags } => build(&input, &out, &flags),
        Command::Info { sketch } => info(&sketch),
        Command::Point { sketch, event, t, tau, metrics, explain } => {
            point(&sketch, event, t, tau, metrics, explain)
        }
        Command::Times { sketch, event, theta, tau, horizon, metrics, explain } => {
            times(&sketch, event, theta, tau, horizon, metrics, explain)
        }
        Command::Events { sketch, t, theta, tau, scan, metrics, explain } => {
            events(&sketch, t, theta, tau, scan, metrics, explain)
        }
        Command::Ranges { sketch, theta, tau, horizon } => ranges(&sketch, theta, tau, horizon),
        Command::Series { sketch, event, tau, horizon, step, metrics, explain } => {
            series(&sketch, event, tau, horizon, step, metrics, explain)
        }
        Command::Stats { sketch, format } => stats(&sketch, format),
        Command::Serve {
            input,
            addr,
            flags,
            sample,
            slow_threshold_ns,
            watch_theta,
            watch_tau,
            watch_every_ms,
            publish_every,
            profile_every_ms,
            ingest_delay_ms,
            state_dir,
        } => crate::serve::serve(
            &input,
            &flags,
            &crate::serve::ServeOptions {
                addr,
                sample,
                slow_threshold_ns,
                watch_theta,
                watch_tau,
                watch_every_ms,
                publish_every,
                profile_every_ms,
                ingest_delay_ms,
                state_dir,
            },
        ),
        Command::Trace { addr, id } => trace(&addr, id.as_deref()),
        Command::Profile { addr } => profile(&addr),
        Command::Ingest { input, out, wal, every, flags } => {
            ingest(&input, &out, &wal, every, &flags)
        }
        Command::Checkpoint { sketch, out } => checkpoint(&sketch, &out),
        Command::Restore { snapshot, wal, out, onto } => {
            restore(&snapshot, wal.as_deref(), &out, onto.as_deref())
        }
    }
}

fn generate(dataset: &str, n: u64, seed: u64, out: &str) -> Result<String, CliError> {
    let (stream, universe) = match dataset {
        "olympics" => {
            let s = olympics::generate(olympics::OlympicsConfig { total_elements: n, seed });
            (s.stream, s.universe)
        }
        _ => {
            let s =
                politics::generate(politics::PoliticsConfig { total_elements: n, skew: 1.1, seed });
            (s.stream, s.universe)
        }
    };
    let mut text = String::with_capacity(stream.len() * 12);
    for el in stream.iter() {
        writeln!(text, "{}\t{}", el.event.value(), el.ts.ticks()).expect("string write");
    }
    fs::write(out, text)?;
    Ok(format!(
        "wrote {} elements over universe {} to {out} (dataset={dataset}, seed={seed})\n",
        stream.len(),
        universe
    ))
}

/// Parses one `event<TAB>timestamp` line.
fn parse_line(line: &str, lineno: usize) -> Result<(EventId, Timestamp), CliError> {
    let mut parts = line.split('\t');
    let bad = || CliError::BadInput(format!("line {lineno}: expected 'event<TAB>timestamp'"));
    let event: u32 = parts.next().ok_or_else(bad)?.trim().parse().map_err(|_| bad())?;
    let ts: u64 = parts.next().ok_or_else(bad)?.trim().parse().map_err(|_| bad())?;
    Ok((EventId(event), Timestamp(ts)))
}

/// Reads a whole TSV stream into memory. Shared by `build`, `ingest`, and
/// `serve`.
pub(crate) fn read_elements(input: &str) -> Result<Vec<(EventId, Timestamp)>, CliError> {
    let text = fs::read_to_string(input)?;
    let mut els = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        els.push(parse_line(line, i + 1)?);
    }
    Ok(els)
}

/// Builds an empty detector of the layout described by `flags`. Shared by
/// `build`, `ingest`, and `serve` so flag semantics cannot drift between
/// the three ingestion commands.
pub(crate) fn detector_from_flags(f: &DetectorFlags) -> Result<AnyDetector, CliError> {
    let variant = match f.variant.as_str() {
        "pbe1" => PbeVariant::pbe1(f.eta),
        _ => PbeVariant::pbe2(f.gamma),
    };
    let mut builder = BurstDetector::builder()
        .variant(variant)
        .accuracy(f.epsilon, f.delta)
        .hierarchical(!f.flat)
        .seed(f.seed)
        .retention(f.retention);
    builder = match f.universe {
        Some(k) => builder.universe(k),
        None => builder.single_event(),
    };
    Ok(if f.shards > 1 {
        AnyDetector::Sharded(builder.shards(f.shards).build()?)
    } else {
        AnyDetector::Plain(Box::new(builder.build()?))
    })
}

fn build(input: &str, out: &str, flags: &DetectorFlags) -> Result<String, CliError> {
    let els = read_elements(input)?;
    let count = els.len();
    let mut det = detector_from_flags(flags)?;
    match &mut det {
        AnyDetector::Sharded(d) => d.ingest_batch(&els)?,
        AnyDetector::Plain(d) => {
            let single = d.config().universe.is_none();
            for &(event, ts) in &els {
                if single {
                    d.ingest_single(ts)?;
                } else {
                    d.ingest(event, ts)?;
                }
            }
        }
    }
    det.finalize();
    let bytes = det.to_bytes();
    let summary_bytes = det.size_bytes();
    fs::write(out, &bytes)?;
    Ok(format!(
        "ingested {count} elements; sketch summary {summary_bytes} bytes (file {} bytes) -> {out}\n",
        bytes.len()
    ))
}

/// Durable build: every arrival goes to the WAL (synced) before the
/// detector, and a `BEDS v2` snapshot is taken every `--every` arrivals —
/// so a `SIGKILL` at any instant loses nothing that was acknowledged.
/// `bed restore` turns the snapshot + WAL back into a queryable sketch.
fn ingest(
    input: &str,
    out: &str,
    wal: &str,
    every: u64,
    flags: &DetectorFlags,
) -> Result<String, CliError> {
    let els = read_elements(input)?;
    let count = els.len();
    let det = detector_from_flags(flags)?;
    let mut sink = bed_core::WalSink::create(wal, det)?;
    let mut ckpt =
        bed_core::Checkpointer::new(out, bed_core::CheckpointPolicy { every_arrivals: every });
    // Batch bounded by the checkpoint period, so the policy is honoured to
    // within one batch without an fsync per element.
    let chunk = every.clamp(1, 4096) as usize;
    for batch in els.chunks(chunk) {
        sink.ingest_batch(batch)?;
        ckpt.maybe_checkpoint(&sink)?;
    }
    // Final checkpoint covers the tail, so a restore replays zero records.
    ckpt.checkpoint(&sink)?;
    sink.into_inner()?;
    Ok(format!(
        "ingested {count} elements; {} checkpoints -> {out} (wal: {wal}, {count} records)\n",
        ckpt.checkpoints_taken(),
    ))
}

/// Wraps an existing sketch (any format) in a `BEDS v2` snapshot.
fn checkpoint(sketch: &str, out: &str) -> Result<String, CliError> {
    let det = load(sketch)?;
    let store = SnapshotStore::new(out);
    let bytes = store.save(&det)?;
    Ok(format!(
        "checkpointed {sketch} -> {out}: {bytes} bytes, watermark {} arrivals\n",
        det.watermark().arrivals
    ))
}

/// Recovers a detector from a snapshot plus the WAL tail, finalizes it,
/// and writes it back out as a plain queryable sketch.
fn restore(
    snapshot: &str,
    wal: Option<&str>,
    out: &str,
    onto: Option<&str>,
) -> Result<String, CliError> {
    let store = SnapshotStore::new(snapshot);
    let outcome = bed_core::recover(&store, wal.map(std::path::Path::new))?;
    let mut det = outcome.detector;
    if let Some(onto_path) = onto {
        let target = load(onto_path)?;
        let mut diff = target.config().diff(det.config()).unwrap_or_default();
        if target.layout_shards() != det.layout_shards() {
            if !diff.is_empty() {
                diff.push_str("; ");
            }
            diff.push_str(&format!(
                "shards: {} vs {} (0 = unsharded)",
                target.layout_shards(),
                det.layout_shards()
            ));
        }
        if !diff.is_empty() {
            return Err(CliError::Recovery(bed_core::RecoveryError::ConfigMismatch { diff }));
        }
    }
    det.finalize();
    fs::write(out, det.to_bytes())?;
    let mut notes = Vec::new();
    if outcome.fell_back {
        notes.push("fell back to the previous snapshot generation".to_string());
    }
    if outcome.torn_tail {
        notes.push("dropped a torn (unacknowledged) wal tail".to_string());
    }
    let notes = if notes.is_empty() { String::new() } else { format!("  [{}]", notes.join("; ")) };
    Ok(format!(
        "restored {} arrivals (snapshot {} + {} replayed of {} wal records) -> {out}{notes}\n",
        det.arrivals(),
        outcome.watermark.arrivals,
        outcome.replayed,
        outcome.wal_records,
    ))
}

fn load(path: &str) -> Result<AnySketch, CliError> {
    let bytes = fs::read(path)?;
    // A BEDS v2 file is a snapshot envelope around a detector record;
    // anything else is a bare BEDD / BEDS v1 record.
    if bytes.len() >= 6
        && bytes.starts_with(&bed_core::checkpoint::SNAPSHOT_MAGIC)
        && u16::from_le_bytes([bytes[4], bytes[5]]) == bed_core::checkpoint::SNAPSHOT_VERSION
    {
        Ok(Snapshot::from_bytes(&bytes)?.detector)
    } else {
        Ok(AnyDetector::from_bytes(&bytes)?)
    }
}

fn info(path: &str) -> Result<String, CliError> {
    let det = load(path)?;
    let c = det.queries().config();
    let mut mode = match (c.universe, c.hierarchical) {
        (None, _) => "single-event".to_string(),
        (Some(k), true) => format!("mixed, K={k}, hierarchical"),
        (Some(k), false) => format!("mixed, K={k}, flat"),
    };
    if let AnyDetector::Sharded(s) = &det {
        write!(mode, ", {} shards", s.num_shards()).expect("string write");
    }
    Ok(format!(
        "sketch: {path}\n mode: {mode}\n variant: {:?}\n epsilon/delta: {}/{}\n seed: {}\n arrivals: {}\n summary bytes: {}\n",
        c.variant, c.sketch.epsilon, c.sketch.delta, c.seed,
        det.queries().arrivals(), det.queries().size_bytes()
    ))
}

fn point(
    path: &str,
    event: u32,
    t: u64,
    tau: u64,
    metrics: bool,
    explain: bool,
) -> Result<String, CliError> {
    let det = load(path)?;
    let tau = BurstSpan::new(tau).map_err(bed_core::BedError::from)?;
    let request = QueryRequest::Point { event: EventId(event), t: Timestamp(t), tau };
    let mut scratch = QueryScratch::new();
    let (response, root_ns) = run_query_explained(&det, &request, &mut scratch, explain)?;
    let QueryResponse::Point { burstiness: b, burst_frequency: bf, cumulative: f, tier } = response
    else {
        return Err(mismatched());
    };
    let mut out = format!(
        "event {event} at t={t} (tau={}):\n burstiness  {b:.1}\n rate/span   {bf:.1}\n cumulative  {f:.1}\n",
        tau.ticks()
    );
    if let Some(tier) = tier {
        writeln!(out, " served by   retention tier {tier}").expect("string write");
    }
    if explain {
        append_explain(&mut out, &det, &scratch, root_ns);
    }
    append_metrics(&mut out, &det, metrics);
    Ok(out)
}

fn times(
    path: &str,
    event: u32,
    theta: f64,
    tau: u64,
    horizon: u64,
    metrics: bool,
    explain: bool,
) -> Result<String, CliError> {
    let det = load(path)?;
    let tau = BurstSpan::new(tau).map_err(bed_core::BedError::from)?;
    let request = QueryRequest::BurstyTimes {
        event: EventId(event),
        theta,
        tau,
        horizon: Timestamp(horizon),
    };
    let mut scratch = QueryScratch::new();
    let (response, root_ns) = run_query_explained(&det, &request, &mut scratch, explain)?;
    let QueryResponse::BurstyTimes(hits) = response else {
        return Err(mismatched());
    };
    let mut out = format!(
        "event {event}, theta={theta}, tau={}: {} bursty instants\n",
        tau.ticks(),
        hits.len()
    );
    for (t, b) in hits {
        writeln!(out, "  t={}\tb={b:.1}", t.ticks()).expect("string write");
    }
    if explain {
        append_explain(&mut out, &det, &scratch, root_ns);
    }
    append_metrics(&mut out, &det, metrics);
    Ok(out)
}

fn events(
    path: &str,
    t: u64,
    theta: f64,
    tau: u64,
    scan: bool,
    metrics: bool,
    explain: bool,
) -> Result<String, CliError> {
    let det = load(path)?;
    let tau = BurstSpan::new(tau).map_err(bed_core::BedError::from)?;
    let strategy = if scan { QueryStrategy::ExactScan } else { QueryStrategy::Pruned };
    let request = QueryRequest::BurstyEvents { t: Timestamp(t), theta, tau, strategy };
    let mut scratch = QueryScratch::new();
    let (response, root_ns) = run_query_explained(&det, &request, &mut scratch, explain)?;
    let QueryResponse::BurstyEvents { hits, stats } = response else {
        return Err(mismatched());
    };
    let mut out = format!(
        "t={t}, theta={theta}, tau={}: {} bursty events ({} probes)\n",
        tau.ticks(),
        hits.len(),
        stats.point_queries
    );
    for h in hits {
        writeln!(out, "  event {}\tb={:.1}", h.event.value(), h.burstiness).expect("string write");
    }
    if explain {
        append_explain(&mut out, &det, &scratch, root_ns);
    }
    append_metrics(&mut out, &det, metrics);
    Ok(out)
}

fn ranges(path: &str, theta: f64, tau: u64, horizon: u64) -> Result<String, CliError> {
    let det = load(path)?;
    let tau = BurstSpan::new(tau).map_err(bed_core::BedError::from)?;
    let ranges = bursty_time_ranges(&det, theta, tau, Timestamp(horizon))?;
    let mut out = format!("theta={theta}, tau={}: {} bursty ranges\n", tau.ticks(), ranges.len());
    for r in ranges {
        writeln!(out, "  [{}, {}]  ({} ticks)", r.start.ticks(), r.end.ticks(), r.len_ticks())
            .expect("string write");
    }
    Ok(out)
}

fn series(
    path: &str,
    event: u32,
    tau: u64,
    horizon: u64,
    step: u64,
    metrics: bool,
    explain: bool,
) -> Result<String, CliError> {
    let det = load(path)?;
    let tau = BurstSpan::new(tau).map_err(bed_core::BedError::from)?;
    let range = bed_core::TimeRange { start: Timestamp(0), end: Timestamp(horizon) };
    let request = QueryRequest::Series { event: EventId(event), tau, range, step };
    let mut scratch = QueryScratch::new();
    let (response, root_ns) = run_query_explained(&det, &request, &mut scratch, explain)?;
    let QueryResponse::Series(series) = response else {
        return Err(mismatched());
    };
    let mut out = format!("event {event}, tau={}, step={step}:\n", tau.ticks());
    for (t, b) in series {
        writeln!(out, "{}\t{b:.1}", t.ticks()).expect("string write");
    }
    if explain {
        append_explain(&mut out, &det, &scratch, root_ns);
    }
    append_metrics(&mut out, &det, metrics);
    Ok(out)
}

/// One blocking HTTP/1.1 GET against a running `bed serve`, returning
/// `(status line, body)`. Std-only on purpose — the container builds
/// offline, and the server always answers `Connection: close`.
fn http_get(addr: &str, path: &str) -> Result<(String, String), CliError> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bed\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp)?;
    let Some(split) = resp.find("\r\n\r\n") else {
        return Err(CliError::BadInput(format!("malformed HTTP response from {addr}")));
    };
    let status = resp.lines().next().unwrap_or("").to_string();
    Ok((status, resp[split + 4..].to_string()))
}

/// `bed trace`: `/trace/recent` (span ring as JSON lines) or
/// `/trace/<id>` (one assembled tree) from a running server.
fn trace(addr: &str, id: Option<&str>) -> Result<String, CliError> {
    let path = match id {
        Some(id) => format!("/trace/{id}"),
        None => "/trace/recent".to_string(),
    };
    let (status, body) = http_get(addr, &path)?;
    if !status.contains(" 200 ") {
        return Err(CliError::BadInput(format!("{addr} {path}: {status}: {}", body.trim())));
    }
    Ok(body)
}

/// `bed profile`: the self-profiler's folded-stack dump from a running
/// server (`bed;<stage> <busy_ns>` per line — flamegraph-ready).
fn profile(addr: &str) -> Result<String, CliError> {
    let (status, body) = http_get(addr, "/profile")?;
    if !status.contains(" 200 ") {
        return Err(CliError::BadInput(format!("{addr} /profile: {status}: {}", body.trim())));
    }
    Ok(body)
}

fn stats(path: &str, format: StatsFormat) -> Result<String, CliError> {
    let det = load(path)?;
    let snap = det.queries().metrics();
    Ok(match format {
        StatsFormat::Json => format!("{}\n", snap.to_json()),
        StatsFormat::Text => snap.to_text(),
        StatsFormat::OpenMetrics => snap.to_openmetrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("bed-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_build_query_pipeline() {
        let tsv = tmp("pipe.tsv");
        let sk = tmp("pipe.bed");
        let out =
            run(["generate", "--dataset", "olympics", "--n", "20000", "--out", &tsv]).unwrap();
        assert!(out.contains("wrote"), "{out}");

        let out = run([
            "build",
            "--input",
            &tsv,
            "--out",
            &sk,
            "--universe",
            "864",
            "--variant",
            "pbe2",
            "--gamma",
            "8",
        ])
        .unwrap();
        assert!(out.contains("ingested"), "{out}");

        let out = run(["info", "--sketch", &sk]).unwrap();
        assert!(out.contains("mixed, K=864, hierarchical"), "{out}");

        let out = run(["point", "--sketch", &sk, "--event", "0", "--t", "1814400"]).unwrap();
        assert!(out.contains("burstiness"), "{out}");

        let out =
            run(["events", "--sketch", &sk, "--t", "1814400", "--theta", "50", "--tau", "86400"])
                .unwrap();
        assert!(out.contains("bursty events"), "{out}");
    }

    #[test]
    fn single_event_pipeline_via_times() {
        let tsv = tmp("single.tsv");
        let sk = tmp("single.bed");
        // hand-written single-event stream with a burst
        let mut text = String::new();
        for t in 0..200u64 {
            text.push_str(&format!("0\t{t}\n"));
            if t >= 150 {
                for _ in 0..5 {
                    text.push_str(&format!("0\t{t}\n"));
                }
            }
        }
        std::fs::write(&tsv, text).unwrap();
        run(["build", "--input", &tsv, "--out", &sk, "--variant", "pbe1", "--eta", "16"]).unwrap();
        let out =
            run(["times", "--sketch", &sk, "--theta", "50", "--tau", "30", "--horizon", "400"])
                .unwrap();
        assert!(out.contains("bursty instants"), "{out}");
        assert!(out.lines().count() > 1, "expected hits, got: {out}");
    }

    #[test]
    fn ranges_and_series_commands() {
        let tsv = tmp("rs.tsv");
        let sk = tmp("rs.bed");
        let mut text = String::new();
        for t in 0..300u64 {
            text.push_str(&format!("0\t{t}\n"));
            if (200..230).contains(&t) {
                for _ in 0..8 {
                    text.push_str(&format!("0\t{t}\n"));
                }
            }
        }
        std::fs::write(&tsv, text).unwrap();
        run(["build", "--input", &tsv, "--out", &sk, "--variant", "pbe2", "--gamma", "2"]).unwrap();

        let out =
            run(["ranges", "--sketch", &sk, "--theta", "100", "--tau", "40", "--horizon", "400"])
                .unwrap();
        assert!(out.contains("bursty ranges"), "{out}");
        assert!(out.contains('['), "expected at least one interval: {out}");

        let out =
            run(["series", "--sketch", &sk, "--tau", "40", "--horizon", "300", "--step", "50"])
                .unwrap();
        assert_eq!(out.lines().count(), 1 + 7, "{out}"); // header + 0..=300 step 50

        // ranges requires a single-event sketch
        let tsv2 = tmp("rs2.tsv");
        let sk2 = tmp("rs2.bed");
        std::fs::write(&tsv2, "0\t1\n1\t2\n").unwrap();
        run(["build", "--input", &tsv2, "--out", &sk2, "--universe", "4"]).unwrap();
        let err =
            run(["ranges", "--sketch", &sk2, "--theta", "1", "--tau", "5", "--horizon", "10"])
                .unwrap_err();
        assert!(err.to_string().contains("mixed"), "{err}");
    }

    #[test]
    fn sharded_build_and_queries() {
        let tsv = tmp("shard.tsv");
        let sk = tmp("shard.beds");
        let sk1 = tmp("shard1.bed");
        let mut text = String::new();
        for t in 0..200u64 {
            text.push_str(&format!("0\t{t}\n3\t{t}\n"));
            if t >= 180 {
                for _ in 0..10 {
                    text.push_str(&format!("5\t{t}\n"));
                }
            }
        }
        std::fs::write(&tsv, text).unwrap();
        let base = ["build", "--input", &tsv, "--universe", "8", "--gamma", "1", "--seed", "3"];
        run(base.iter().chain(["--out", &sk, "--shards", "4"].iter()).copied()).unwrap();
        run(base.iter().chain(["--out", &sk1].iter()).copied()).unwrap();

        let out = run(["info", "--sketch", &sk]).unwrap();
        assert!(out.contains("mixed, K=8, hierarchical, 4 shards"), "{out}");

        // sharding is invisible to point queries: same answer as unsharded
        let args = ["--event", "5", "--t", "199", "--tau", "20"];
        let sharded = run(["point", "--sketch", &sk].iter().chain(&args).copied()).unwrap();
        let plain = run(["point", "--sketch", &sk1].iter().chain(&args).copied()).unwrap();
        assert_eq!(
            sharded.lines().skip(1).collect::<Vec<_>>(),
            plain.lines().skip(1).collect::<Vec<_>>()
        );

        let out =
            run(["events", "--sketch", &sk, "--t", "199", "--theta", "50", "--tau", "20"]).unwrap();
        assert!(out.contains("event 5"), "{out}");

        let out = run([
            "times",
            "--sketch",
            &sk,
            "--event",
            "5",
            "--theta",
            "50",
            "--tau",
            "20",
            "--horizon",
            "300",
        ])
        .unwrap();
        assert!(out.contains("bursty instants"), "{out}");

        let out = run([
            "series",
            "--sketch",
            &sk,
            "--event",
            "5",
            "--tau",
            "20",
            "--horizon",
            "200",
            "--step",
            "50",
        ])
        .unwrap();
        assert_eq!(out.lines().count(), 1 + 5, "{out}");

        // interval semantics stay single-event-only
        let err = run(["ranges", "--sketch", &sk, "--theta", "1", "--tau", "5", "--horizon", "10"])
            .unwrap_err();
        assert!(err.to_string().contains("bursty_time_ranges"), "{err}");
    }

    #[test]
    fn stats_and_metrics_flags() {
        let tsv = tmp("stats.tsv");
        let sk = tmp("stats.bed");
        std::fs::write(&tsv, "0\t1\n1\t2\n2\t3\n").unwrap();
        run(["build", "--input", &tsv, "--out", &sk, "--universe", "4"]).unwrap();

        let out = run(["stats", "--sketch", &sk]).unwrap();
        assert!(out.starts_with('{'), "{out}");
        assert!(out.contains("\"ingest.count\""), "{out}");
        assert!(out.contains("\"value\":3"), "decoded sketches seed ingest.count: {out}");
        assert!(out.contains("\"structure.bytes\""), "{out}");
        assert!(out.contains("\"query.point.latency_ns\""), "{out}");

        let out = run(["stats", "--sketch", &sk, "--text"]).unwrap();
        assert!(!out.starts_with('{') && out.contains("ingest.count"), "{out}");

        // --format openmetrics emits exactly what `bed serve` puts on the
        // `/metrics` wire: HELP/TYPE framing, suffix conventions, EOF.
        let out = run(["stats", "--sketch", &sk, "--format", "openmetrics"]).unwrap();
        assert!(out.starts_with("# HELP "), "{out}");
        assert!(out.contains("# TYPE bed_ingest_count counter"), "{out}");
        assert!(out.contains("bed_ingest_count_total 3"), "{out}");
        assert!(out.contains("bed_structure_bytes "), "{out}");
        assert!(out.contains("layer=\"cmpbe\""), "{out}");
        assert!(out.ends_with("# EOF\n"), "{out}");

        let out = run(["point", "--sketch", &sk, "--event", "0", "--t", "3", "--metrics"]).unwrap();
        assert!(out.contains("burstiness"), "{out}");
        assert!(out.contains("metrics:"), "{out}");
        assert!(out.contains("query.point.count"), "{out}");

        let out =
            run(["events", "--sketch", &sk, "--t", "3", "--theta", "0.5", "--tau", "2", "--scan"])
                .unwrap();
        assert!(out.contains("bursty events"), "{out}");
    }

    #[test]
    fn ingest_checkpoint_restore_round_trip() {
        let tsv = tmp("dur.tsv");
        let snap = tmp("dur.ckpt");
        let wal = tmp("dur.wal");
        let restored = tmp("dur-restored.bed");
        let golden = tmp("dur-golden.bed");
        let mut text = String::new();
        for t in 0..400u64 {
            text.push_str(&format!("{}\t{t}\n", t % 8));
            if t >= 350 {
                for _ in 0..6 {
                    text.push_str(&format!("2\t{t}\n"));
                }
            }
        }
        std::fs::write(&tsv, text).unwrap();

        let base = ["--universe", "8", "--gamma", "1", "--seed", "5"];
        let out = run(["ingest", "--input", &tsv, "--out", &snap, "--wal", &wal, "--every", "100"]
            .iter()
            .chain(&base)
            .copied())
        .unwrap();
        assert!(out.contains("checkpoints"), "{out}");

        let out = run(["restore", "--snapshot", &snap, "--wal", &wal, "--out", &restored]).unwrap();
        assert!(out.contains("restored"), "{out}");

        // the restored sketch answers exactly like a plain build
        run(["build", "--input", &tsv, "--out", &golden].iter().chain(&base).copied()).unwrap();
        let args = ["--event", "2", "--t", "399", "--tau", "30"];
        let a = run(["point", "--sketch", &restored].iter().chain(&args).copied()).unwrap();
        let b = run(["point", "--sketch", &golden].iter().chain(&args).copied()).unwrap();
        assert_eq!(a.lines().skip(1).collect::<Vec<_>>(), b.lines().skip(1).collect::<Vec<_>>());

        // every query command accepts the snapshot file directly
        let out = run(["info", "--sketch", &snap]).unwrap();
        assert!(out.contains("mixed, K=8"), "{out}");

        // checkpoint an existing sketch, restore it without a wal
        let resnap = tmp("dur-re.ckpt");
        let reout = tmp("dur-re.bed");
        let out = run(["checkpoint", "--sketch", &golden, "--out", &resnap]).unwrap();
        assert!(out.contains("watermark"), "{out}");
        let out = run(["restore", "--snapshot", &resnap, "--out", &reout]).unwrap();
        assert!(out.contains("0 replayed of 0"), "{out}");
        assert_eq!(std::fs::read(&reout).unwrap(), std::fs::read(&golden).unwrap());
    }

    #[test]
    fn restore_onto_mismatched_config_diffs() {
        let tsv = tmp("onto.tsv");
        std::fs::write(&tsv, "0\t1\n1\t2\n2\t3\n").unwrap();
        let snap = tmp("onto.ckpt");
        let wal = tmp("onto.wal");
        let other = tmp("onto-other.bed");
        run([
            "ingest",
            "--input",
            &tsv,
            "--out",
            &snap,
            "--wal",
            &wal,
            "--universe",
            "8",
            "--seed",
            "1",
        ])
        .unwrap();
        // different universe AND seed
        run(["build", "--input", &tsv, "--out", &other, "--universe", "16", "--seed", "2"])
            .unwrap();
        let out = tmp("onto-restored.bed");
        let err =
            run(["restore", "--snapshot", &snap, "--wal", &wal, "--out", &out, "--onto", &other])
                .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("configuration mismatch"), "{msg}");
        assert!(msg.contains("universe"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
        // matching config is accepted
        let same = tmp("onto-same.bed");
        run(["build", "--input", &tsv, "--out", &same, "--universe", "8", "--seed", "1"]).unwrap();
        run(["restore", "--snapshot", &snap, "--wal", &wal, "--out", &out, "--onto", &same])
            .unwrap();
    }

    #[test]
    fn restore_onto_retention_mismatch_refuses_with_diff() {
        let tsv = tmp("ret-onto.tsv");
        std::fs::write(&tsv, "0\t1\n1\t2\n2\t3\n").unwrap();
        let snap = tmp("ret-onto.ckpt");
        let wal = tmp("ret-onto.wal");
        run([
            "ingest",
            "--input",
            &tsv,
            "--out",
            &snap,
            "--wal",
            &wal,
            "--universe",
            "8",
            "--retention",
            "100:8:2",
        ])
        .unwrap();
        // target built WITHOUT a policy: the recovered tiered state must not
        // silently masquerade as a full-resolution sketch
        let unbounded = tmp("ret-onto-unbounded.bed");
        run(["build", "--input", &tsv, "--out", &unbounded, "--universe", "8"]).unwrap();
        let out = tmp("ret-onto-restored.bed");
        let err = run([
            "restore",
            "--snapshot",
            &snap,
            "--wal",
            &wal,
            "--out",
            &out,
            "--onto",
            &unbounded,
        ])
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("configuration mismatch"), "{msg}");
        assert!(msg.contains("retention"), "{msg}");
        assert!(msg.contains("none"), "{msg}");
        // a different policy is also a refusal, with both specs in the diff
        let coarser = tmp("ret-onto-coarser.bed");
        run([
            "build",
            "--input",
            &tsv,
            "--out",
            &coarser,
            "--universe",
            "8",
            "--retention",
            "200:8:2",
        ])
        .unwrap();
        let msg =
            run(["restore", "--snapshot", &snap, "--wal", &wal, "--out", &out, "--onto", &coarser])
                .unwrap_err()
                .to_string();
        assert!(msg.contains("retention"), "{msg}");
        assert!(msg.contains("100:8:2") && msg.contains("200:8:2"), "{msg}");
        // the matching policy restores cleanly
        let same = tmp("ret-onto-same.bed");
        run([
            "build",
            "--input",
            &tsv,
            "--out",
            &same,
            "--universe",
            "8",
            "--retention",
            "100:8:2",
        ])
        .unwrap();
        run(["restore", "--snapshot", &snap, "--wal", &wal, "--out", &out, "--onto", &same])
            .unwrap();
    }

    #[test]
    fn corrupt_snapshot_and_wal_are_reported_not_panics() {
        let tsv = tmp("cor.tsv");
        std::fs::write(&tsv, "0\t1\n1\t2\n2\t3\n3\t4\n").unwrap();
        let snap = tmp("cor.ckpt");
        let wal = tmp("cor.wal");
        run(["ingest", "--input", &tsv, "--out", &snap, "--wal", &wal, "--universe", "4"]).unwrap();

        // bit-flip the snapshot payload: CRC catches it; with no .prev the
        // restore errors out cleanly
        let prev = format!("{snap}.prev");
        let _ = std::fs::remove_file(&prev);
        let good = std::fs::read(&snap).unwrap();
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        std::fs::write(&snap, &bad).unwrap();
        let out = tmp("cor-out.bed");
        let err = run(["restore", "--snapshot", &snap, "--wal", &wal, "--out", &out]).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // ...and `info` on the damaged snapshot reports the same, not a panic
        let err = run(["info", "--sketch", &snap]).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // truncated snapshot
        std::fs::write(&snap, &good[..good.len() / 3]).unwrap();
        let err = run(["info", "--sketch", &snap]).unwrap_err();
        assert!(matches!(err, CliError::Codec(_)), "{err}");

        // snapshot version from the future
        let mut future = good.clone();
        future[4] = 0x2A;
        future[5] = 0;
        std::fs::write(&snap, &future).unwrap();
        let err = run(["info", "--sketch", &snap]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // corrupt wal header
        std::fs::write(&snap, &good).unwrap();
        let mut wal_bytes = std::fs::read(&wal).unwrap();
        wal_bytes[8] ^= 0xFF;
        std::fs::write(&wal, &wal_bytes).unwrap();
        let err = run(["restore", "--snapshot", &snap, "--wal", &wal, "--out", &out]).unwrap_err();
        assert!(matches!(err, CliError::Codec(_) | CliError::Recovery(_)), "{err}");
    }

    #[test]
    fn malformed_tsv_is_reported_with_line_number() {
        let tsv = tmp("bad.tsv");
        std::fs::write(&tsv, "0\t1\nnot-a-line\n").unwrap();
        let sk = tmp("bad.bed");
        let err = run(["build", "--input", &tsv, "--out", &sk]).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn corrupt_sketch_file_is_reported() {
        let sk = tmp("corrupt.bed");
        std::fs::write(&sk, b"definitely not a sketch").unwrap();
        let err = run(["info", "--sketch", &sk]).unwrap_err();
        assert!(err.to_string().contains("corrupt sketch"), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = run(["info", "--sketch", "/nonexistent/path.bed"]).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
