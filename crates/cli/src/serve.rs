//! `bed serve` — a hand-rolled HTTP/1.1 query server over a live ingest.
//!
//! The container builds offline, so there is no HTTP framework: a
//! non-blocking [`TcpListener`] accept loop parses just enough of HTTP/1.1
//! to answer a handful of routes, always closing the connection afterwards:
//!
//! - `GET`/`POST /query` — one of the five canonical [`QueryRequest`]
//!   kinds, as query-string parameters or a JSON body. Answers come from
//!   the **latest published epoch** ([`bed_core::DetectorEpochs`]), so
//!   queries never wait on the ingest lock; every answer is stamped with
//!   the epoch it came from (`generation`, `arrivals`, `last_ts`).
//! - `GET /metrics` — the detector's metrics merged with the tracer's and
//!   the epoch publisher's, rendered as OpenMetrics text exposition;
//! - `GET /healthz` — liveness (`ok`);
//! - `GET /slow` — the tracer's slow-query log as a JSON array.
//!
//! While the responder runs, a background thread drains the input TSV
//! stream into the detector, publishing an epoch every `--publish-every`
//! arrivals (plus a final publish once the stream is drained) and firing a
//! periodic traced "watch" bursty-event query so the slow log and query
//! metrics carry live content without an external client.
//!
//! Each accepted connection is handled on its own scoped thread. That
//! keeps a slow client from stalling other requests, and it is also the
//! shutdown correctness story: `SIGTERM`/`SIGINT` flips an [`AtomicBool`],
//! the accept loop stops accepting within one poll interval, and the
//! enclosing [`std::thread::scope`] joins every in-flight connection
//! thread — a response that was being written when the signal arrived is
//! always finished before the listener closes and the process exits.

use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bed_core::{
    AnyDetector, BurstQueries as _, BurstSpan, CheckpointPolicy, DetectorEpochs, EpochPublisher,
    EventId, QueryRequest, QueryResponse, QueryScratch, QueryStrategy, TimeRange, Timestamp,
    Traceable as _, Tracer, TracerConfig, Watermark,
};

use crate::args::DetectorFlags;
use crate::commands::{detector_from_flags, read_elements};
use crate::json::{self, Json};
use crate::CliError;

/// Process-wide shutdown flag flipped by the signal handler in `main`.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Request headers larger than this are refused outright.
const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Request bodies larger than this are refused with `413` before being
/// read — a query body is a few hundred bytes.
const MAX_BODY_BYTES: usize = 64 * 1024;

const CT_TEXT: &str = "text/plain; charset=utf-8";
const CT_JSON: &str = "application/json; charset=utf-8";

/// Requests a cooperative shutdown of a running `bed serve` loop.
///
/// Async-signal-safe: a single atomic store, so `main` may call it from a
/// `SIGTERM`/`SIGINT` handler.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Knobs for [`serve`] beyond detector construction.
#[derive(Debug, Clone)]
pub(crate) struct ServeOptions {
    /// Listen address; port 0 binds any free port (the bound address is
    /// printed before serving starts).
    pub addr: String,
    /// Trace 1 in N queries (0 disables tracing).
    pub sample: u64,
    /// Slow-query capture threshold in ns (0 captures every traced query).
    pub slow_threshold_ns: u64,
    /// θ of the periodic watch query.
    pub watch_theta: f64,
    /// τ of the periodic watch query.
    pub watch_tau: u64,
    /// Milliseconds between watch queries (0 disables the watcher).
    pub watch_every_ms: u64,
    /// Publish a query epoch every this many arrivals.
    pub publish_every: u64,
}

/// Everything a connection handler needs, shared across the scoped
/// threads: the live detector (writer side), the epoch publication
/// surface (reader side), and the tracer.
struct ServeCtx {
    det: Mutex<AnyDetector>,
    epochs: DetectorEpochs,
    tracer: Arc<Tracer>,
}

/// Runs the query server until `SIGTERM`/`SIGINT`, returning a summary.
pub(crate) fn serve(
    input: &str,
    flags: &DetectorFlags,
    opts: &ServeOptions,
) -> Result<String, CliError> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    serve_until(input, flags, opts, &SHUTDOWN, |addr| {
        println!(
            "bed serve listening on http://{addr}/ (GET|POST /query, GET /metrics /healthz /slow)"
        );
    })
}

/// [`serve`] with an injected stop flag and bound-address callback, so the
/// loop is drivable in-process by tests.
fn serve_until(
    input: &str,
    flags: &DetectorFlags,
    opts: &ServeOptions,
    stop: &AtomicBool,
    on_bound: impl FnOnce(SocketAddr),
) -> Result<String, CliError> {
    let els = read_elements(input)?;
    let total = els.len();
    let mut det = detector_from_flags(flags)?;
    let tracer = Arc::new(Tracer::new(TracerConfig {
        sample_every: opts.sample,
        slow_threshold_ns: opts.slow_threshold_ns,
        dump_slow_on_drop: true,
        ..TracerConfig::default()
    }));
    det.set_tracer(Arc::clone(&tracer));
    let mut epochs = DetectorEpochs::new(&det);
    epochs.set_tracer(Arc::clone(&tracer));
    let ctx = ServeCtx { det: Mutex::new(det), epochs, tracer };

    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    on_bound(bound);

    let requests = AtomicU64::new(0);
    let ingested = AtomicU64::new(0);

    let result = std::thread::scope(|scope| {
        scope.spawn(|| ingest_loop(&els, &ctx, stop, opts, &ingested));
        let r = accept_loop(&listener, scope, &ctx, stop, &requests);
        // Any exit from the accept loop (including an error) must release
        // the ingest thread before the scope joins it. Connection threads
        // already spawned keep running: the scope join below is what
        // guarantees an in-flight response finishes after a signal.
        stop.store(true, Ordering::SeqCst);
        r
    });
    result?;

    Ok(format!(
        "served {} requests on {bound}; ingested {}/{total} elements; published {} epochs\n",
        requests.load(Ordering::Relaxed),
        ingested.load(Ordering::Relaxed),
        ctx.epochs.generation(),
    ))
}

/// Polls for connections until `stop`, answering each on its own scoped
/// thread. A failure on one connection never takes the server down.
fn accept_loop<'scope>(
    listener: &TcpListener,
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: &'scope ServeCtx,
    stop: &AtomicBool,
    requests: &'scope AtomicU64,
) -> Result<(), CliError> {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                scope.spawn(move || {
                    requests.fetch_add(1, Ordering::Relaxed);
                    let _ = handle_connection(stream, ctx);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Polling (rather than a blocking accept) keeps the loop
                // responsive to the shutdown flag: a blocking accept would
                // simply restart after the signal handler returns.
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(CliError::Io(e)),
        }
    }
    Ok(())
}

/// Drains the stream into the detector in small locked chunks, publishing
/// epochs at the configured cadence and firing the watch query between
/// chunks and after the drain until shutdown.
fn ingest_loop(
    els: &[(EventId, Timestamp)],
    ctx: &ServeCtx,
    stop: &AtomicBool,
    opts: &ServeOptions,
    ingested: &AtomicU64,
) {
    const CHUNK: usize = 512;
    let watch_period = Duration::from_millis(opts.watch_every_ms.max(1));
    let mut publisher =
        EpochPublisher::new(CheckpointPolicy { every_arrivals: opts.publish_every });
    let mut scratch = QueryScratch::new();
    let mut last_watch = Instant::now();
    let mut last_ts = Timestamp(0);
    for chunk in els.chunks(CHUNK) {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        {
            let mut d = ctx.det.lock().expect("detector lock");
            for &(event, ts) in chunk {
                if d.ingest(event, ts).is_ok() {
                    last_ts = ts;
                }
            }
            // Publishing needs the detector stable, so it happens under the
            // same lock acquisition — readers stay wait-free regardless.
            publisher.maybe_publish(&d, &ctx.epochs);
        }
        ingested.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        if opts.watch_every_ms > 0 && last_watch.elapsed() >= watch_period {
            watch_query(ctx, opts, last_ts, &mut scratch);
            last_watch = Instant::now();
        }
    }
    {
        let mut d = ctx.det.lock().expect("detector lock");
        d.finalize();
        // Unconditional final publish: once the drain completes, `/query`
        // must answer from the full stream, not the last cadence boundary.
        ctx.epochs.publish(&d);
    }
    if opts.watch_every_ms == 0 {
        return;
    }
    // The stream is drained; keep the watch firing so scrapes see fresh
    // latency samples (and `/slow` has content) until shutdown.
    watch_query(ctx, opts, last_ts, &mut scratch);
    last_watch = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(watch_period.min(Duration::from_millis(50)));
        if last_watch.elapsed() >= watch_period {
            watch_query(ctx, opts, last_ts, &mut scratch);
            last_watch = Instant::now();
        }
    }
}

/// One traced bursty-event query at the newest ingested instant.
/// Best-effort: single-event sketches reject it, which is fine — the
/// point is to exercise the traced query path, not the answer.
fn watch_query(ctx: &ServeCtx, opts: &ServeOptions, t: Timestamp, scratch: &mut QueryScratch) {
    let Ok(tau) = BurstSpan::new(opts.watch_tau) else { return };
    let request = QueryRequest::BurstyEvents {
        t,
        theta: opts.watch_theta,
        tau,
        strategy: QueryStrategy::Pruned,
    };
    let d = ctx.det.lock().expect("detector lock");
    let _ = d.queries().query_reusing(&request, scratch);
}

/// Answers one request on `stream` and closes it.
fn handle_connection(mut stream: TcpStream, ctx: &ServeCtx) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = match read_request(&mut stream)? {
        ReadOutcome::Request(r) => r,
        ReadOutcome::Empty => return Ok(()),
        ReadOutcome::TooLarge => {
            return write_response(
                &mut stream,
                "413 Payload Too Large",
                CT_JSON,
                &error_body(&format!("request larger than {MAX_BODY_BYTES} bytes")),
            );
        }
    };
    let (status, content_type, body) = respond(&request, ctx);
    write_response(&mut stream, status, content_type, &body)
}

/// Routes one parsed request. Unknown paths get `404`; known paths with
/// the wrong method get `405`; `/query` failures get typed `400`s.
fn respond(req: &Request, ctx: &ServeCtx) -> (&'static str, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET" | "POST", "/query") => query_route(req, ctx),
        ("GET", "/metrics") => {
            let snap = ctx.det.lock().expect("detector lock").queries().metrics();
            let merged = snap.merge(&ctx.tracer.metrics_snapshot()).merge(&ctx.epochs.metrics());
            (
                "200 OK",
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                merged.to_openmetrics(),
            )
        }
        ("GET", "/healthz") => ("200 OK", CT_TEXT, "ok\n".to_string()),
        ("GET", "/slow") => ("200 OK", CT_JSON, ctx.tracer.slow_json()),
        (_, "/query" | "/metrics" | "/healthz" | "/slow") => {
            ("405 Method Not Allowed", CT_TEXT, "method not allowed\n".to_string())
        }
        _ => ("404 Not Found", CT_TEXT, "not found\n".to_string()),
    }
}

/// `/query`: decode the request (query string or JSON body), answer it
/// from the latest published epoch, and stamp the answer with that epoch.
fn query_route(req: &Request, ctx: &ServeCtx) -> (&'static str, &'static str, String) {
    let fields = if req.method == "POST" {
        match json::parse(&req.body) {
            Ok(v @ Json::Obj(_)) => v,
            Ok(_) => return bad_request("request body must be a JSON object"),
            Err(e) => return bad_request(&format!("malformed JSON: {e}")),
        }
    } else {
        params_to_fields(&req.query)
    };
    let request = match request_from_fields(&fields) {
        Ok(r) => r,
        Err(e) => return bad_request(&e),
    };
    // A view per connection: each handler thread gets its own cursors and
    // scratch, so concurrent queries never contend with each other (or
    // with ingest — the epoch read path is lock-free).
    let view = ctx.epochs.view();
    match view.query(&request) {
        Ok(response) => (
            "200 OK",
            CT_JSON,
            render_answer(&request, &response, view.answer_generation(), view.answer_watermark()),
        ),
        Err(e) => bad_request(&e.to_string()),
    }
}

fn bad_request(message: &str) -> (&'static str, &'static str, String) {
    ("400 Bad Request", CT_JSON, error_body(message))
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", json::escape(message))
}

/// Converts `k=v&k=v` query-string parameters into the same [`Json`]
/// object shape a POST body parses to, so both entry points share
/// [`request_from_fields`]. Values are typed by trial: integer, then
/// float, then string.
fn params_to_fields(query: &str) -> Json {
    let mut fields = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let value = if let Ok(i) = v.parse::<i64>() {
            Json::Int(i)
        } else if let Ok(f) = v.parse::<f64>() {
            Json::Float(f)
        } else {
            Json::Str(v.to_string())
        };
        fields.push((k.to_string(), value));
    }
    Json::Obj(fields)
}

fn field_u64(fields: &Json, key: &str) -> Result<u64, String> {
    match fields.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(Json::Str(s)) if s.parse::<u64>().is_ok() => Ok(s.parse().unwrap()),
        Some(_) => Err(format!("field '{key}' must be a non-negative integer")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn field_f64(fields: &Json, key: &str) -> Result<f64, String> {
    match fields.get(key) {
        Some(Json::Int(i)) => Ok(*i as f64),
        Some(Json::Float(f)) => Ok(*f),
        Some(Json::Str(s)) if s.parse::<f64>().is_ok() => Ok(s.parse().unwrap()),
        Some(_) => Err(format!("field '{key}' must be a number")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn field_event(fields: &Json) -> Result<EventId, String> {
    let id = field_u64(fields, "event")?;
    u32::try_from(id).map(EventId).map_err(|_| "field 'event' exceeds u32".to_string())
}

fn field_tau(fields: &Json) -> Result<BurstSpan, String> {
    BurstSpan::new(field_u64(fields, "tau")?).map_err(|e| e.to_string())
}

/// Builds a [`QueryRequest`] from decoded fields. Every failure is a
/// message naming the offending field — the `/query` 400 body.
fn request_from_fields(fields: &Json) -> Result<QueryRequest, String> {
    let kind = match fields.get("kind") {
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return Err("field 'kind' must be a string".into()),
        None => return Err("missing field 'kind'".into()),
    };
    match kind {
        "point" => Ok(QueryRequest::Point {
            event: field_event(fields)?,
            t: Timestamp(field_u64(fields, "t")?),
            tau: field_tau(fields)?,
        }),
        "bursty_times" => Ok(QueryRequest::BurstyTimes {
            event: field_event(fields)?,
            theta: field_f64(fields, "theta")?,
            tau: field_tau(fields)?,
            horizon: Timestamp(field_u64(fields, "horizon")?),
        }),
        "bursty_events" => {
            let strategy = match fields.get("strategy") {
                None => QueryStrategy::Pruned,
                Some(Json::Str(s)) if s == "pruned" => QueryStrategy::Pruned,
                Some(Json::Str(s)) if s == "exact_scan" => QueryStrategy::ExactScan,
                Some(_) => {
                    return Err(
                        "field 'strategy' must be \"pruned\" or \"exact_scan\"".to_string()
                    )
                }
            };
            Ok(QueryRequest::BurstyEvents {
                t: Timestamp(field_u64(fields, "t")?),
                theta: field_f64(fields, "theta")?,
                tau: field_tau(fields)?,
                strategy,
            })
        }
        "series" => Ok(QueryRequest::Series {
            event: field_event(fields)?,
            tau: field_tau(fields)?,
            // Range inversion is the query layer's typed error, so the
            // struct literal (not `TimeRange::new`) is deliberate.
            range: TimeRange {
                start: Timestamp(match fields.get("start") {
                    None => 0,
                    Some(_) => field_u64(fields, "start")?,
                }),
                end: Timestamp(field_u64(fields, "end")?),
            },
            step: field_u64(fields, "step")?,
        }),
        "top_k" => Ok(QueryRequest::TopK {
            event: field_event(fields)?,
            k: field_u64(fields, "k")? as usize,
            tau: field_tau(fields)?,
            horizon: Timestamp(field_u64(fields, "horizon")?),
        }),
        other => Err(format!(
            "unknown query kind '{other}' (expected point, bursty_times, bursty_events, series, or top_k)"
        )),
    }
}

/// Renders a `/query` answer. Every response carries the request kind and
/// the epoch stamp; the payload shape follows the [`QueryResponse`]
/// variant.
fn render_answer(
    request: &QueryRequest,
    response: &QueryResponse,
    generation: u64,
    watermark: Watermark,
) -> String {
    use std::fmt::Write as _;
    let kind = match request {
        QueryRequest::Point { .. } => "point",
        QueryRequest::BurstyTimes { .. } => "bursty_times",
        QueryRequest::BurstyEvents { .. } => "bursty_events",
        QueryRequest::Series { .. } => "series",
        QueryRequest::TopK { .. } => "top_k",
    };
    let last_ts = watermark.last_ts.map_or("null".to_string(), |t| t.0.to_string());
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"kind\":\"{kind}\",\"epoch\":{{\"generation\":{generation},\"arrivals\":{},\"last_ts\":{last_ts}}}",
        watermark.arrivals
    );
    match response {
        QueryResponse::Point { burstiness, burst_frequency, cumulative, tier } => {
            let _ = write!(
                out,
                ",\"burstiness\":{},\"burst_frequency\":{},\"cumulative\":{}",
                json::num(*burstiness),
                json::num(*burst_frequency),
                json::num(*cumulative)
            );
            if let Some(tier) = tier {
                let _ = write!(out, ",\"tier\":{tier}");
            }
        }
        QueryResponse::BurstyEvents { hits, stats } => {
            out.push_str(",\"hits\":[");
            for (i, hit) in hits.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"event\":{},\"burstiness\":{}}}",
                    hit.event.0,
                    json::num(hit.burstiness)
                );
            }
            let _ = write!(
                out,
                "],\"stats\":{{\"point_queries\":{},\"pruned_subtrees\":{},\"leaves_probed\":{}}}",
                stats.point_queries, stats.pruned_subtrees, stats.leaves_probed
            );
        }
        // BurstyTimes, Series, and TopK are all `(t, value)` samples.
        _ => {
            out.push_str(",\"samples\":[");
            for (i, (t, v)) in response.samples().unwrap_or(&[]).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", t.0, json::num(*v));
            }
            out.push(']');
        }
    }
    out.push_str("}\n");
    out
}

/// One parsed request: method, path, query string, and body (decoded
/// lossily — query bodies are ASCII JSON).
struct Request {
    method: String,
    path: String,
    query: String,
    body: String,
}

enum ReadOutcome {
    Request(Request),
    /// Headers or declared body exceed the caps → `413`.
    TooLarge,
    /// Nothing (parseable) arrived; close silently.
    Empty,
}

/// Reads one request: headers up to `\r\n\r\n` (capped), then as much of
/// the declared `Content-Length` body as the client sends (capped, before
/// any of it is buffered). A stalled client's request is served from
/// whatever arrived — exactly like the previous scrape-only server.
fn read_request(stream: &mut TcpStream) -> std::io::Result<ReadOutcome> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Ok(ReadOutcome::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break buf.len(),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                break buf.len()
            }
            Err(e) => return Err(e),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end.min(buf.len())]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || target.is_empty() {
        return Ok(ReadOutcome::Empty);
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        // Refused on the declared length alone: the body is never read.
        return Ok(ReadOutcome::TooLarge);
    }

    let mut body = buf[header_end.min(buf.len())..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        body: String::from_utf8_lossy(&body).into_owned(),
    }))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn fixture(name: &str) -> String {
        let dir = std::env::temp_dir().join("bed-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut text = String::new();
        for t in 0..300u64 {
            text.push_str(&format!("{}\t{t}\n", t % 8));
            if t >= 250 {
                for _ in 0..6 {
                    text.push_str(&format!("2\t{t}\n"));
                }
            }
        }
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: bed\r\nConnection: close\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let split = resp.find("\r\n\r\n").expect("header/body split");
        (resp[..split].to_string(), resp[split + 4..].to_string())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "POST {path} HTTP/1.1\r\nHost: bed\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let split = resp.find("\r\n\r\n").expect("header/body split");
        (resp[..split].to_string(), resp[split + 4..].to_string())
    }

    fn flags(shards: usize) -> DetectorFlags {
        DetectorFlags {
            variant: "pbe2".into(),
            eta: 128,
            gamma: 2.0,
            universe: Some(8),
            epsilon: 0.01,
            delta: 0.05,
            flat: false,
            seed: 7,
            shards,
            retention: None,
        }
    }

    fn opts(publish_every: u64, watch_every_ms: u64) -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            sample: 1,
            slow_threshold_ns: 0,
            watch_theta: 1.0,
            watch_tau: 40,
            watch_every_ms,
            publish_every,
        }
    }

    /// Runs `serve_until` on a scoped thread and hands the bound address
    /// to `check`; flips the stop flag afterwards and returns the summary.
    fn with_server(
        input: &str,
        flags: &DetectorFlags,
        opts: &ServeOptions,
        check: impl FnOnce(SocketAddr),
    ) -> String {
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let handle = scope
                .spawn(|| serve_until(input, flags, opts, &stop, |addr| tx.send(addr).unwrap()));
            let addr = rx.recv().unwrap();
            check(addr);
            stop.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        })
    }

    #[test]
    fn serve_answers_metrics_healthz_and_slow_while_ingesting() {
        let input = fixture("serve.tsv");
        let summary = with_server(&input, &flags(1), &opts(128, 10), |addr| {
            let (head, body) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert_eq!(body, "ok\n");

            let (head, body) = get(addr, "/metrics");
            assert!(head.contains("application/openmetrics-text"), "{head}");
            assert!(body.contains("bed_ingest_count_total"), "{body}");
            assert!(body.contains("bed_trace_sampled_total"), "{body}");
            assert!(body.contains("bed_epoch_published_total"), "{body}");
            assert!(body.ends_with("# EOF\n"), "{body}");

            // Threshold 0 captures every traced query, so the watch query
            // must land in the slow log shortly.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (_, slow) = get(addr, "/slow");
                if slow.contains("query.bursty_events") {
                    break;
                }
                assert!(Instant::now() < deadline, "no slow query captured: {slow}");
                std::thread::sleep(Duration::from_millis(25));
            }

            let (head, _) = get(addr, "/nope");
            assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        });
        assert!(summary.contains("served"), "{summary}");
        assert!(summary.contains("ingested"), "{summary}");
        assert!(summary.contains("published"), "{summary}");
    }

    #[test]
    fn query_answers_all_five_kinds_from_published_epochs() {
        let input = fixture("serve-query.tsv");
        // Two shards: /query must fan out coherently, not just read one cell.
        with_server(&input, &flags(2), &opts(256, 0), |addr| {
            // Wait for the post-drain publish: its epoch covers the full
            // stream (300 base + 50×6 burst arrivals).
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (head, body) = get(addr, "/query?kind=point&event=2&t=299&tau=40");
                assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
                assert!(body.contains("\"kind\":\"point\""), "{body}");
                assert!(body.contains("\"epoch\":{\"generation\":"), "{body}");
                if body.contains("\"arrivals\":600") {
                    assert!(body.contains("\"last_ts\":299"), "{body}");
                    break;
                }
                assert!(Instant::now() < deadline, "drain publish never arrived: {body}");
                std::thread::sleep(Duration::from_millis(20));
            }

            let (head, body) =
                get(addr, "/query?kind=bursty_times&event=2&theta=20&tau=40&horizon=299");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"samples\":[["), "{body}");

            let (head, body) = get(addr, "/query?kind=series&event=2&end=299&step=50&tau=40");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"samples\":[[0,"), "{body}");

            let (head, body) = get(addr, "/query?kind=top_k&event=2&k=3&tau=40&horizon=299");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"samples\":["), "{body}");

            let (head, body) =
                post(addr, "/query", r#"{"kind":"bursty_events","t":299,"theta":20,"tau":40}"#);
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"hits\":[{\"event\":2,"), "{body}");
            assert!(body.contains("\"stats\":{\"point_queries\":"), "{body}");

            let (_, exact) = post(
                addr,
                "/query",
                r#"{"kind":"bursty_events","t":299,"theta":20,"tau":40,"strategy":"exact_scan"}"#,
            );
            assert!(exact.contains("\"hits\":[{\"event\":2,"), "{exact}");
        });
    }

    #[test]
    fn query_rejects_bad_requests_with_typed_errors() {
        let input = fixture("serve-errors.tsv");
        with_server(&input, &flags(1), &opts(8_192, 0), |addr| {
            // Malformed JSON body.
            let (head, body) = post(addr, "/query", "{\"kind\":");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("malformed JSON"), "{body}");

            // A JSON body that is not an object.
            let (head, body) = post(addr, "/query", "[1,2,3]");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("JSON object"), "{body}");

            // Unknown query kind.
            let (head, body) = get(addr, "/query?kind=warp&event=1&t=1&tau=1");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("unknown query kind 'warp'"), "{body}");

            // Missing fields.
            let (head, body) = get(addr, "/query?kind=point&event=1");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("missing field"), "{body}");

            // τ = 0 is rejected before the detector sees it.
            let (head, body) = get(addr, "/query?kind=point&event=1&t=10&tau=0");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("error"), "{body}");

            // Out-of-universe event becomes the detector's typed error.
            let (head, body) = get(addr, "/query?kind=point&event=99&t=10&tau=40");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("error"), "{body}");

            // Negative event id is a field error, not a panic.
            let (head, body) = get(addr, "/query?kind=point&event=-3&t=10&tau=40");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("'event'"), "{body}");

            // Oversized declared body → 413 without reading it.
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "POST /query HTTP/1.1\r\nHost: bed\r\nContent-Length: 100000\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

            // Known path, wrong method.
            let (head, _) = post(addr, "/metrics", "");
            assert!(head.starts_with("HTTP/1.1 405"), "{head}");

            // The server is still healthy after all of the above.
            let (head, _) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        });
    }

    #[test]
    fn serve_rejects_non_get_and_survives_garbage() {
        let input = fixture("serve-bad.tsv");
        with_server(&input, &flags(1), &opts(8_192, 0), |addr| {
            // DELETE on a known path is refused but answered.
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "DELETE /metrics HTTP/1.1\r\nHost: bed\r\n\r\n").unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

            // a connection that sends nothing and closes is ignored
            drop(TcpStream::connect(addr).unwrap());

            // the server still answers afterwards
            let (head, _) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        });
    }

    #[test]
    fn in_flight_response_finishes_after_shutdown_request() {
        let input = fixture("serve-shutdown.tsv");
        let stop = AtomicBool::new(false);
        let o = opts(8_192, 0);
        let f = flags(1);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let handle =
                scope.spawn(|| serve_until(&input, &f, &o, &stop, |addr| tx.send(addr).unwrap()));
            let addr = rx.recv().unwrap();

            // Open a request but stall before the blank line, then request
            // shutdown while the handler is mid-read.
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET /healthz HTTP/1.1\r\nHost: bed\r\n").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(120));
            stop.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(60));
            write!(s, "\r\n").unwrap();
            s.flush().unwrap();

            // The response still completes: the scope joins the connection
            // thread before serve_until returns.
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.ends_with("ok\n"), "{resp}");

            let summary = handle.join().unwrap().unwrap();
            assert!(summary.contains("served"), "{summary}");
        });
    }
}
