//! `bed serve` — a hand-rolled HTTP/1.1 query server over a live ingest.
//!
//! The container builds offline, so there is no HTTP framework: a
//! non-blocking [`TcpListener`] accept loop parses just enough of HTTP/1.1
//! to answer a handful of routes, always closing the connection afterwards:
//!
//! - `GET`/`POST /query` — one of the five canonical [`QueryRequest`]
//!   kinds, as query-string parameters or a JSON body. Answers come from
//!   the **latest published epoch** ([`bed_core::DetectorEpochs`]), so
//!   queries never wait on the ingest lock; every answer is stamped with
//!   the epoch it came from (`generation`, `arrivals`, `last_ts`).
//! - `GET /metrics` — the detector's metrics merged with the tracer's,
//!   the epoch publisher's (staleness gauges refreshed at scrape time),
//!   and the self-profiler's, rendered as OpenMetrics text exposition
//!   with trace-id exemplars on the latency histograms;
//! - `GET /livez` — liveness (`ok` whenever the process answers);
//! - `GET /readyz` — readiness: `503` with a JSON reason list until the
//!   genesis epoch is published (and the state dir, when configured, is
//!   writable), `200` with the answering generation afterwards;
//! - `GET /healthz` — `ok` once ready, `503` with the readiness reasons
//!   otherwise (kept for existing scrapers; `/livez` is pure liveness);
//! - `GET /trace/recent` — the tracer's span ring as JSON lines;
//! - `GET /trace/<id>` — one trace assembled into a nested span tree;
//! - `GET /profile` — the self-profiler's folded-stack dump
//!   (`bed;<stage> <busy_ns>` per line, flamegraph-ready);
//! - `GET /slow` — the tracer's slow-query log as a JSON array.
//!
//! Every `/query` answer carries a root `trace_id` (client-supplied via a
//! `trace_id` field when present, minted otherwise) that propagates into
//! sampled spans and latency-histogram exemplars; `?explain=1` adds a
//! per-stage timing breakdown of how the answer was served.
//!
//! While the responder runs, a background thread drains the input TSV
//! stream into the detector, publishing an epoch every `--publish-every`
//! arrivals (plus a final publish once the stream is drained) and firing a
//! periodic traced "watch" bursty-event query so the slow log and query
//! metrics carry live content without an external client.
//!
//! Each accepted connection is handled on its own scoped thread. That
//! keeps a slow client from stalling other requests, and it is also the
//! shutdown correctness story: `SIGTERM`/`SIGINT` flips an [`AtomicBool`],
//! the accept loop stops accepting within one poll interval, and the
//! enclosing [`std::thread::scope`] joins every in-flight connection
//! thread — a response that was being written when the signal arrived is
//! always finished before the listener closes and the process exits.

use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bed_core::{
    AnyDetector, BurstQueries as _, BurstSpan, CheckpointPolicy, DetectorEpochs, EpochPublisher,
    EventId, Profiler, QueryRequest, QueryResponse, QueryScratch, QueryStrategy, TimeRange,
    Timestamp, TraceId, Traceable as _, Tracer, TracerConfig, Watermark,
};

use crate::args::DetectorFlags;
use crate::commands::{detector_from_flags, read_elements};
use crate::json::{self, Json};
use crate::CliError;

/// Process-wide shutdown flag flipped by the signal handler in `main`.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Request headers larger than this are refused outright.
const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Request bodies larger than this are refused with `413` before being
/// read — a query body is a few hundred bytes.
const MAX_BODY_BYTES: usize = 64 * 1024;

const CT_TEXT: &str = "text/plain; charset=utf-8";
const CT_JSON: &str = "application/json; charset=utf-8";

/// Requests a cooperative shutdown of a running `bed serve` loop.
///
/// Async-signal-safe: a single atomic store, so `main` may call it from a
/// `SIGTERM`/`SIGINT` handler.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Knobs for [`serve`] beyond detector construction.
#[derive(Debug, Clone)]
pub(crate) struct ServeOptions {
    /// Listen address; port 0 binds any free port (the bound address is
    /// printed before serving starts).
    pub addr: String,
    /// Trace 1 in N queries (0 disables tracing).
    pub sample: u64,
    /// Slow-query capture threshold in ns (0 captures every traced query).
    pub slow_threshold_ns: u64,
    /// θ of the periodic watch query.
    pub watch_theta: f64,
    /// τ of the periodic watch query.
    pub watch_tau: u64,
    /// Milliseconds between watch queries (0 disables the watcher).
    pub watch_every_ms: u64,
    /// Publish a query epoch every this many arrivals.
    pub publish_every: u64,
    /// Milliseconds between self-profiler samples (0 disables the
    /// profiler thread; `/profile` then reports zero ticks).
    pub profile_every_ms: u64,
    /// Milliseconds the ingest thread waits before draining the stream.
    /// Leaves a deliberate pre-genesis window in which `/readyz` answers
    /// `503` — used by smoke tests to observe the not-ready state.
    pub ingest_delay_ms: u64,
    /// Directory `/readyz` probes for writability (WAL/checkpoint home).
    /// `None` skips the probe: readiness is then epoch-publication only.
    pub state_dir: Option<String>,
}

/// Everything a connection handler needs, shared across the scoped
/// threads: the live detector (writer side), the epoch publication
/// surface (reader side), and the tracer.
struct ServeCtx {
    det: Mutex<AnyDetector>,
    epochs: DetectorEpochs,
    tracer: Arc<Tracer>,
    profiler: Profiler,
    /// Directory `/readyz` probes for writability (`None` skips it).
    state_dir: Option<String>,
}

impl ServeCtx {
    /// Readiness reasons, empty when the server may answer `/query`: the
    /// genesis epoch must be published, and the state dir (when
    /// configured) must accept writes.
    fn unready_reasons(&self) -> Vec<String> {
        let mut reasons = Vec::new();
        if self.epochs.generation() == 0 {
            reasons.push("no epoch published yet (ingest has not reached genesis)".to_string());
        }
        if let Some(dir) = &self.state_dir {
            let probe = std::path::Path::new(dir).join(".bed-readyz-probe");
            match std::fs::write(&probe, b"probe") {
                Ok(()) => {
                    let _ = std::fs::remove_file(&probe);
                }
                Err(e) => reasons.push(format!("state dir '{dir}' not writable: {e}")),
            }
        }
        reasons
    }

    /// `/readyz` payload: `(ready, body)`.
    fn readiness(&self) -> (bool, String) {
        let reasons = self.unready_reasons();
        if reasons.is_empty() {
            (true, format!("{{\"ready\":true,\"generation\":{}}}\n", self.epochs.generation()))
        } else {
            let list = reasons
                .iter()
                .map(|r| format!("\"{}\"", json::escape(r)))
                .collect::<Vec<_>>()
                .join(",");
            (false, format!("{{\"ready\":false,\"reasons\":[{list}]}}\n"))
        }
    }
}

/// Runs the query server until `SIGTERM`/`SIGINT`, returning a summary.
pub(crate) fn serve(
    input: &str,
    flags: &DetectorFlags,
    opts: &ServeOptions,
) -> Result<String, CliError> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    serve_until(input, flags, opts, &SHUTDOWN, |addr| {
        println!(
            "bed serve listening on http://{addr}/ (GET|POST /query, GET /metrics /livez /readyz /healthz /trace/recent /trace/<id> /profile /slow)"
        );
    })
}

/// [`serve`] with an injected stop flag and bound-address callback, so the
/// loop is drivable in-process by tests.
fn serve_until(
    input: &str,
    flags: &DetectorFlags,
    opts: &ServeOptions,
    stop: &AtomicBool,
    on_bound: impl FnOnce(SocketAddr),
) -> Result<String, CliError> {
    let els = read_elements(input)?;
    let total = els.len();
    let mut det = detector_from_flags(flags)?;
    let tracer = Arc::new(Tracer::new(TracerConfig {
        sample_every: opts.sample,
        slow_threshold_ns: opts.slow_threshold_ns,
        dump_slow_on_drop: true,
        ..TracerConfig::default()
    }));
    det.set_tracer(Arc::clone(&tracer));
    // Unpublished start: `/readyz` reports the truth (503) until the
    // ingest thread publishes the genesis epoch.
    let mut epochs = DetectorEpochs::new_unpublished(&det);
    epochs.set_tracer(Arc::clone(&tracer));
    let ctx = ServeCtx {
        det: Mutex::new(det),
        epochs,
        tracer,
        profiler: Profiler::with_default_stages(),
        state_dir: opts.state_dir.clone(),
    };

    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    on_bound(bound);

    let requests = AtomicU64::new(0);
    let ingested = AtomicU64::new(0);

    let result = std::thread::scope(|scope| {
        scope.spawn(|| ingest_loop(&els, &ctx, stop, opts, &ingested));
        if opts.profile_every_ms > 0 {
            scope.spawn(|| profile_loop(&ctx, stop, opts.profile_every_ms));
        }
        let r = accept_loop(&listener, scope, &ctx, stop, &requests);
        // Any exit from the accept loop (including an error) must release
        // the ingest thread before the scope joins it. Connection threads
        // already spawned keep running: the scope join below is what
        // guarantees an in-flight response finishes after a signal.
        stop.store(true, Ordering::SeqCst);
        r
    });
    result?;

    Ok(format!(
        "served {} requests on {bound}; ingested {}/{total} elements; published {} epochs\n",
        requests.load(Ordering::Relaxed),
        ingested.load(Ordering::Relaxed),
        ctx.epochs.generation(),
    ))
}

/// Polls for connections until `stop`, answering each on its own scoped
/// thread. A failure on one connection never takes the server down.
fn accept_loop<'scope>(
    listener: &TcpListener,
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: &'scope ServeCtx,
    stop: &AtomicBool,
    requests: &'scope AtomicU64,
) -> Result<(), CliError> {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                scope.spawn(move || {
                    requests.fetch_add(1, Ordering::Relaxed);
                    let _ = handle_connection(stream, ctx);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Polling (rather than a blocking accept) keeps the loop
                // responsive to the shutdown flag: a blocking accept would
                // simply restart after the signal handler returns.
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(CliError::Io(e)),
        }
    }
    Ok(())
}

/// Drains the stream into the detector in small locked chunks, publishing
/// epochs at the configured cadence and firing the watch query between
/// chunks and after the drain until shutdown.
fn ingest_loop(
    els: &[(EventId, Timestamp)],
    ctx: &ServeCtx,
    stop: &AtomicBool,
    opts: &ServeOptions,
    ingested: &AtomicU64,
) {
    const CHUNK: usize = 512;
    // Optional pre-genesis hold: nothing is ingested (and so nothing is
    // published) until the delay elapses, keeping /readyz observably 503.
    let delay_until = Instant::now() + Duration::from_millis(opts.ingest_delay_ms);
    while opts.ingest_delay_ms > 0 && Instant::now() < delay_until && !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(5));
    }
    let watch_period = Duration::from_millis(opts.watch_every_ms.max(1));
    let mut publisher =
        EpochPublisher::new(CheckpointPolicy { every_arrivals: opts.publish_every });
    let mut scratch = QueryScratch::new();
    let mut last_watch = Instant::now();
    let mut last_ts = Timestamp(0);
    for chunk in els.chunks(CHUNK) {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        {
            let mut d = ctx.det.lock().expect("detector lock");
            for &(event, ts) in chunk {
                if d.ingest(event, ts).is_ok() {
                    last_ts = ts;
                }
            }
            // Publishing needs the detector stable, so it happens under the
            // same lock acquisition — readers stay wait-free regardless.
            publisher.maybe_publish(&d, &ctx.epochs);
        }
        ingested.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        if opts.watch_every_ms > 0 && last_watch.elapsed() >= watch_period {
            watch_query(ctx, opts, last_ts, &mut scratch);
            last_watch = Instant::now();
        }
    }
    {
        let mut d = ctx.det.lock().expect("detector lock");
        d.finalize();
        // Unconditional final publish: once the drain completes, `/query`
        // must answer from the full stream, not the last cadence boundary.
        ctx.epochs.publish(&d);
    }
    if opts.watch_every_ms == 0 {
        return;
    }
    // The stream is drained; keep the watch firing so scrapes see fresh
    // latency samples (and `/slow` has content) until shutdown.
    watch_query(ctx, opts, last_ts, &mut scratch);
    last_watch = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(watch_period.min(Duration::from_millis(50)));
        if last_watch.elapsed() >= watch_period {
            watch_query(ctx, opts, last_ts, &mut scratch);
            last_watch = Instant::now();
        }
    }
}

/// One traced bursty-event query at the newest ingested instant.
/// Best-effort: single-event sketches reject it, which is fine — the
/// point is to exercise the traced query path, not the answer.
fn watch_query(ctx: &ServeCtx, opts: &ServeOptions, t: Timestamp, scratch: &mut QueryScratch) {
    let Ok(tau) = BurstSpan::new(opts.watch_tau) else { return };
    let request = QueryRequest::BurstyEvents {
        t,
        theta: opts.watch_theta,
        tau,
        strategy: QueryStrategy::Pruned,
    };
    // A fresh root id per watch round: sampled spans and the latency
    // exemplars the watch feeds stay joinable from /metrics to /trace/<id>.
    scratch.trace_id = ctx.tracer.next_trace_id().0;
    let d = ctx.det.lock().expect("detector lock");
    let _ = d.queries().query_reusing(&request, scratch);
}

/// Samples the cumulative per-stage counters into the self-profiler at a
/// fixed cadence. The sampled snapshot is the same det + epoch merge the
/// `/metrics` route serves, so profiler attribution can never disagree
/// with the scraped histograms.
fn profile_loop(ctx: &ServeCtx, stop: &AtomicBool, every_ms: u64) {
    let period = Duration::from_millis(every_ms.max(1));
    let mut last: Option<Instant> = None; // first sample fires immediately
    while !stop.load(Ordering::SeqCst) {
        if last.is_none_or(|l| l.elapsed() >= period) {
            let snap = {
                let d = ctx.det.lock().expect("detector lock");
                d.queries().metrics().merge(&ctx.epochs.metrics())
            };
            ctx.profiler.sample(&snap);
            last = Some(Instant::now());
        }
        // Short slices keep the thread responsive to the shutdown flag
        // regardless of the configured cadence.
        std::thread::sleep(period.min(Duration::from_millis(50)));
    }
}

/// Answers one request on `stream` and closes it.
fn handle_connection(mut stream: TcpStream, ctx: &ServeCtx) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = match read_request(&mut stream)? {
        ReadOutcome::Request(r) => r,
        ReadOutcome::Empty => return Ok(()),
        ReadOutcome::TooLarge => {
            return write_response(
                &mut stream,
                "413 Payload Too Large",
                CT_JSON,
                &error_body(&format!("request larger than {MAX_BODY_BYTES} bytes")),
            );
        }
    };
    let (status, content_type, body) = respond(&request, ctx);
    write_response(&mut stream, status, content_type, &body)
}

/// Routes one parsed request. Unknown paths get `404`; known paths with
/// the wrong method get `405`; `/query` failures get typed `400`s.
fn respond(req: &Request, ctx: &ServeCtx) -> (&'static str, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET" | "POST", "/query") => query_route(req, ctx),
        ("GET", "/metrics") => {
            // Refresh the staleness gauges from the live watermark before
            // merging, so scrapes see the current epoch age / arrival lag.
            let (snap, live) = {
                let d = ctx.det.lock().expect("detector lock");
                (d.queries().metrics(), d.watermark())
            };
            ctx.epochs.record_staleness(live);
            let merged = snap
                .merge(&ctx.tracer.metrics_snapshot())
                .merge(&ctx.epochs.metrics())
                .merge(&ctx.profiler.metrics_snapshot());
            (
                "200 OK",
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                merged.to_openmetrics(),
            )
        }
        ("GET", "/livez") => ("200 OK", CT_TEXT, "ok\n".to_string()),
        ("GET", "/readyz") => match ctx.readiness() {
            (true, body) => ("200 OK", CT_JSON, body),
            (false, body) => ("503 Service Unavailable", CT_JSON, body),
        },
        ("GET", "/healthz") => match ctx.readiness() {
            (true, _) => ("200 OK", CT_TEXT, "ok\n".to_string()),
            (false, body) => ("503 Service Unavailable", CT_JSON, body),
        },
        ("GET", "/trace/recent") => ("200 OK", CT_TEXT, ctx.tracer.events_json_lines()),
        ("GET", path) if path.starts_with("/trace/") => trace_route(path, ctx),
        ("GET", "/profile") => ("200 OK", CT_TEXT, ctx.profiler.to_folded()),
        ("GET", "/slow") => ("200 OK", CT_JSON, ctx.tracer.slow_json()),
        (_, "/query" | "/metrics" | "/livez" | "/readyz" | "/healthz" | "/profile" | "/slow") => {
            ("405 Method Not Allowed", CT_TEXT, "method not allowed\n".to_string())
        }
        (_, path) if path.starts_with("/trace/") => {
            ("405 Method Not Allowed", CT_TEXT, "method not allowed\n".to_string())
        }
        _ => ("404 Not Found", CT_TEXT, "not found\n".to_string()),
    }
}

/// `/trace/<id>`: one trace assembled into a nested span tree. The id is
/// the 16-hex-digit form every `/query` response and exemplar carries
/// (decimal accepted too).
fn trace_route(path: &str, ctx: &ServeCtx) -> (&'static str, &'static str, String) {
    let raw = &path["/trace/".len()..];
    let id = u64::from_str_radix(raw.trim_start_matches("0x"), 16)
        .ok()
        .or_else(|| raw.parse::<u64>().ok());
    let Some(id) = id.filter(|&id| id != 0) else {
        return bad_request(&format!("'{raw}' is not a trace id (expected hex)"));
    };
    match ctx.tracer.trace_tree_json(TraceId(id)) {
        Some(tree) => ("200 OK", CT_JSON, format!("{tree}\n")),
        None => (
            "404 Not Found",
            CT_JSON,
            format!("{{\"error\":\"no spans recorded for trace {id:016x}\"}}\n"),
        ),
    }
}

/// `/query`: decode the request (query string or JSON body), answer it
/// from the latest published epoch, and stamp the answer with that epoch.
fn query_route(req: &Request, ctx: &ServeCtx) -> (&'static str, &'static str, String) {
    let fields = if req.method == "POST" {
        match json::parse(&req.body) {
            Ok(v @ Json::Obj(_)) => v,
            Ok(_) => return bad_request("request body must be a JSON object"),
            Err(e) => return bad_request(&format!("malformed JSON: {e}")),
        }
    } else {
        params_to_fields(&req.query)
    };
    let request = match request_from_fields(&fields) {
        Ok(r) => r,
        Err(e) => return bad_request(&e),
    };
    // Epoch views must not be dereferenced before the genesis publish;
    // readiness is the contract, and the 503 names it.
    if ctx.epochs.generation() == 0 {
        return (
            "503 Service Unavailable",
            CT_JSON,
            error_body("not ready: no epoch published yet (see /readyz)"),
        );
    }
    // The root trace id: adopted from the client when supplied (hex or
    // decimal), minted otherwise. Minting is id arithmetic only — it does
    // not record a span, so unsampled requests stay off the ring.
    let trace_id = match field_trace_id(&fields) {
        Ok(Some(id)) => id,
        Ok(None) => ctx.tracer.next_trace_id().0,
        Err(e) => return bad_request(&e),
    };
    let explain = field_flag(&fields, "explain");
    // A view per connection: each handler thread gets its own cursors and
    // scratch, so concurrent queries never contend with each other (or
    // with ingest — the epoch read path is lock-free).
    let view = ctx.epochs.view();
    let mut scratch = QueryScratch::new();
    scratch.trace_id = trace_id;
    scratch.explain = explain;
    if explain {
        // Arm stage timing here: the bursty-event fan-out probes shard
        // epochs directly (no per-shard tracing root to arm it), and the
        // per-event paths re-arm on entry anyway.
        scratch.stages.reset(true);
    }
    let started = Instant::now();
    let result = view.query_reusing(&request, &mut scratch);
    let root_ns = started.elapsed().as_nanos() as u64;
    match result {
        Ok(response) => {
            let explain_block = explain.then(|| {
                render_explain(
                    &request,
                    &response,
                    &scratch,
                    root_ns,
                    ctx,
                    view.answer_generation(),
                )
            });
            (
                "200 OK",
                CT_JSON,
                render_answer(
                    &request,
                    &response,
                    view.answer_generation(),
                    view.answer_watermark(),
                    trace_id,
                    explain_block.as_deref(),
                ),
            )
        }
        Err(e) => bad_request(&e.to_string()),
    }
}

/// Reads an optional client-supplied `trace_id` field: a hex string (the
/// form `/query` responses and exemplars carry) or a positive integer.
fn field_trace_id(fields: &Json) -> Result<Option<u64>, String> {
    match fields.get("trace_id") {
        None => Ok(None),
        Some(Json::Int(i)) if *i > 0 => Ok(Some(*i as u64)),
        Some(Json::Str(s)) => u64::from_str_radix(s.trim_start_matches("0x"), 16)
            .ok()
            .filter(|&id| id != 0)
            .map(Some)
            .ok_or_else(|| format!("field 'trace_id' '{s}' is not a nonzero hex id")),
        Some(_) => Err("field 'trace_id' must be a hex string or positive integer".to_string()),
    }
}

/// A truthy boolean-ish field: `1`, `true`, or `"true"`/`"1"`.
fn field_flag(fields: &Json, key: &str) -> bool {
    match fields.get(key) {
        Some(Json::Bool(b)) => *b,
        Some(Json::Int(i)) => *i != 0,
        Some(Json::Str(s)) => s == "1" || s.eq_ignore_ascii_case("true"),
        _ => false,
    }
}

/// The `?explain=1` block: per-stage kernel nanoseconds harvested from the
/// armed [`QueryScratch`], the serving path actually taken, the retention
/// tier (point answers), and the answering epoch — everything an operator
/// needs to see *how* the answer was produced.
fn render_explain(
    request: &QueryRequest,
    response: &QueryResponse,
    scratch: &QueryScratch,
    root_ns: u64,
    ctx: &ServeCtx,
    generation: u64,
) -> String {
    use std::fmt::Write as _;
    let st = &scratch.stages;
    // Which probe kernel answered: the stage counters say so directly for
    // the sweep kinds; point probes bypass the counters, so fall back to
    // whether the published epochs carry SoA banks at all.
    let path = if st.bank_probes > 0 {
        "bank"
    } else if st.scalar_probes > 0 {
        "scalar"
    } else if ctx.epochs.bank_bytes() > 0 {
        "bank"
    } else {
        "scalar"
    };
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"root_ns\":{root_ns},\"stages\":{{\"cell_probe_ns\":{},\"median_combine_ns\":{},\"hierarchy_prune_ns\":{}}},\"path\":\"{path}\",\"probes\":{{\"bank\":{},\"scalar\":{}}}",
        st.cell_probe_ns, st.median_combine_ns, st.hierarchy_prune_ns, st.bank_probes,
        st.scalar_probes,
    );
    if let QueryRequest::BurstyEvents { strategy, .. } = request {
        let name = match strategy {
            QueryStrategy::Pruned => "pruned",
            QueryStrategy::ExactScan => "exact_scan",
        };
        let _ = write!(out, ",\"strategy\":\"{name}\"");
    }
    if let QueryResponse::Point { tier, .. } = response {
        match tier {
            Some(t) => {
                let _ = write!(out, ",\"tier\":{t}");
            }
            None => out.push_str(",\"tier\":null"),
        }
    }
    let _ = write!(out, ",\"generation\":{generation}}}");
    out
}

fn bad_request(message: &str) -> (&'static str, &'static str, String) {
    ("400 Bad Request", CT_JSON, error_body(message))
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", json::escape(message))
}

/// Converts `k=v&k=v` query-string parameters into the same [`Json`]
/// object shape a POST body parses to, so both entry points share
/// [`request_from_fields`]. Values are typed by trial: integer, then
/// float, then string.
fn params_to_fields(query: &str) -> Json {
    let mut fields = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let value = if let Ok(i) = v.parse::<i64>() {
            Json::Int(i)
        } else if let Ok(f) = v.parse::<f64>() {
            Json::Float(f)
        } else {
            Json::Str(v.to_string())
        };
        fields.push((k.to_string(), value));
    }
    Json::Obj(fields)
}

fn field_u64(fields: &Json, key: &str) -> Result<u64, String> {
    match fields.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(Json::Str(s)) if s.parse::<u64>().is_ok() => Ok(s.parse().unwrap()),
        Some(_) => Err(format!("field '{key}' must be a non-negative integer")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn field_f64(fields: &Json, key: &str) -> Result<f64, String> {
    match fields.get(key) {
        Some(Json::Int(i)) => Ok(*i as f64),
        Some(Json::Float(f)) => Ok(*f),
        Some(Json::Str(s)) if s.parse::<f64>().is_ok() => Ok(s.parse().unwrap()),
        Some(_) => Err(format!("field '{key}' must be a number")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn field_event(fields: &Json) -> Result<EventId, String> {
    let id = field_u64(fields, "event")?;
    u32::try_from(id).map(EventId).map_err(|_| "field 'event' exceeds u32".to_string())
}

fn field_tau(fields: &Json) -> Result<BurstSpan, String> {
    BurstSpan::new(field_u64(fields, "tau")?).map_err(|e| e.to_string())
}

/// Builds a [`QueryRequest`] from decoded fields. Every failure is a
/// message naming the offending field — the `/query` 400 body.
fn request_from_fields(fields: &Json) -> Result<QueryRequest, String> {
    let kind = match fields.get("kind") {
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return Err("field 'kind' must be a string".into()),
        None => return Err("missing field 'kind'".into()),
    };
    match kind {
        "point" => Ok(QueryRequest::Point {
            event: field_event(fields)?,
            t: Timestamp(field_u64(fields, "t")?),
            tau: field_tau(fields)?,
        }),
        "bursty_times" => Ok(QueryRequest::BurstyTimes {
            event: field_event(fields)?,
            theta: field_f64(fields, "theta")?,
            tau: field_tau(fields)?,
            horizon: Timestamp(field_u64(fields, "horizon")?),
        }),
        "bursty_events" => {
            let strategy = match fields.get("strategy") {
                None => QueryStrategy::Pruned,
                Some(Json::Str(s)) if s == "pruned" => QueryStrategy::Pruned,
                Some(Json::Str(s)) if s == "exact_scan" => QueryStrategy::ExactScan,
                Some(_) => {
                    return Err(
                        "field 'strategy' must be \"pruned\" or \"exact_scan\"".to_string()
                    )
                }
            };
            Ok(QueryRequest::BurstyEvents {
                t: Timestamp(field_u64(fields, "t")?),
                theta: field_f64(fields, "theta")?,
                tau: field_tau(fields)?,
                strategy,
            })
        }
        "series" => Ok(QueryRequest::Series {
            event: field_event(fields)?,
            tau: field_tau(fields)?,
            // Range inversion is the query layer's typed error, so the
            // struct literal (not `TimeRange::new`) is deliberate.
            range: TimeRange {
                start: Timestamp(match fields.get("start") {
                    None => 0,
                    Some(_) => field_u64(fields, "start")?,
                }),
                end: Timestamp(field_u64(fields, "end")?),
            },
            step: field_u64(fields, "step")?,
        }),
        "top_k" => Ok(QueryRequest::TopK {
            event: field_event(fields)?,
            k: field_u64(fields, "k")? as usize,
            tau: field_tau(fields)?,
            horizon: Timestamp(field_u64(fields, "horizon")?),
        }),
        other => Err(format!(
            "unknown query kind '{other}' (expected point, bursty_times, bursty_events, series, or top_k)"
        )),
    }
}

/// Renders a `/query` answer. Every response carries the request kind,
/// the root trace id, and the epoch stamp; the payload shape follows the
/// [`QueryResponse`] variant, and `explain` (when requested) is appended
/// as a pre-rendered JSON object.
fn render_answer(
    request: &QueryRequest,
    response: &QueryResponse,
    generation: u64,
    watermark: Watermark,
    trace_id: u64,
    explain: Option<&str>,
) -> String {
    use std::fmt::Write as _;
    let kind = match request {
        QueryRequest::Point { .. } => "point",
        QueryRequest::BurstyTimes { .. } => "bursty_times",
        QueryRequest::BurstyEvents { .. } => "bursty_events",
        QueryRequest::Series { .. } => "series",
        QueryRequest::TopK { .. } => "top_k",
    };
    let last_ts = watermark.last_ts.map_or("null".to_string(), |t| t.0.to_string());
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"kind\":\"{kind}\",\"trace_id\":\"{trace_id:016x}\",\"epoch\":{{\"generation\":{generation},\"arrivals\":{},\"last_ts\":{last_ts}}}",
        watermark.arrivals
    );
    match response {
        QueryResponse::Point { burstiness, burst_frequency, cumulative, tier } => {
            let _ = write!(
                out,
                ",\"burstiness\":{},\"burst_frequency\":{},\"cumulative\":{}",
                json::num(*burstiness),
                json::num(*burst_frequency),
                json::num(*cumulative)
            );
            if let Some(tier) = tier {
                let _ = write!(out, ",\"tier\":{tier}");
            }
        }
        QueryResponse::BurstyEvents { hits, stats } => {
            out.push_str(",\"hits\":[");
            for (i, hit) in hits.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"event\":{},\"burstiness\":{}}}",
                    hit.event.0,
                    json::num(hit.burstiness)
                );
            }
            let _ = write!(
                out,
                "],\"stats\":{{\"point_queries\":{},\"pruned_subtrees\":{},\"leaves_probed\":{}}}",
                stats.point_queries, stats.pruned_subtrees, stats.leaves_probed
            );
        }
        // BurstyTimes, Series, and TopK are all `(t, value)` samples.
        _ => {
            out.push_str(",\"samples\":[");
            for (i, (t, v)) in response.samples().unwrap_or(&[]).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", t.0, json::num(*v));
            }
            out.push(']');
        }
    }
    if let Some(explain) = explain {
        let _ = write!(out, ",\"explain\":{explain}");
    }
    out.push_str("}\n");
    out
}

/// One parsed request: method, path, query string, and body (decoded
/// lossily — query bodies are ASCII JSON).
struct Request {
    method: String,
    path: String,
    query: String,
    body: String,
}

enum ReadOutcome {
    Request(Request),
    /// Headers or declared body exceed the caps → `413`.
    TooLarge,
    /// Nothing (parseable) arrived; close silently.
    Empty,
}

/// Reads one request: headers up to `\r\n\r\n` (capped), then as much of
/// the declared `Content-Length` body as the client sends (capped, before
/// any of it is buffered). A stalled client's request is served from
/// whatever arrived — exactly like the previous scrape-only server.
fn read_request(stream: &mut TcpStream) -> std::io::Result<ReadOutcome> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Ok(ReadOutcome::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break buf.len(),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                break buf.len()
            }
            Err(e) => return Err(e),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end.min(buf.len())]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || target.is_empty() {
        return Ok(ReadOutcome::Empty);
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        // Refused on the declared length alone: the body is never read.
        return Ok(ReadOutcome::TooLarge);
    }

    let mut body = buf[header_end.min(buf.len())..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        body: String::from_utf8_lossy(&body).into_owned(),
    }))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn fixture(name: &str) -> String {
        let dir = std::env::temp_dir().join("bed-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut text = String::new();
        for t in 0..300u64 {
            text.push_str(&format!("{}\t{t}\n", t % 8));
            if t >= 250 {
                for _ in 0..6 {
                    text.push_str(&format!("2\t{t}\n"));
                }
            }
        }
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: bed\r\nConnection: close\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let split = resp.find("\r\n\r\n").expect("header/body split");
        (resp[..split].to_string(), resp[split + 4..].to_string())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "POST {path} HTTP/1.1\r\nHost: bed\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let split = resp.find("\r\n\r\n").expect("header/body split");
        (resp[..split].to_string(), resp[split + 4..].to_string())
    }

    fn flags(shards: usize) -> DetectorFlags {
        DetectorFlags {
            variant: "pbe2".into(),
            eta: 128,
            gamma: 2.0,
            universe: Some(8),
            epsilon: 0.01,
            delta: 0.05,
            flat: false,
            seed: 7,
            shards,
            retention: None,
        }
    }

    fn opts(publish_every: u64, watch_every_ms: u64) -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            sample: 1,
            slow_threshold_ns: 0,
            watch_theta: 1.0,
            watch_tau: 40,
            watch_every_ms,
            publish_every,
            profile_every_ms: 20,
            ingest_delay_ms: 0,
            state_dir: None,
        }
    }

    /// Polls `/readyz` until the genesis epoch is published (the server
    /// starts unpublished, so readiness-dependent routes would otherwise
    /// race the first ingest chunk).
    fn wait_ready(addr: SocketAddr) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (head, body) = get(addr, "/readyz");
            if head.starts_with("HTTP/1.1 200") {
                assert!(body.contains("\"ready\":true"), "{body}");
                return;
            }
            assert!(Instant::now() < deadline, "server never became ready: {head} {body}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Runs `serve_until` on a scoped thread and hands the bound address
    /// to `check`; flips the stop flag afterwards and returns the summary.
    fn with_server(
        input: &str,
        flags: &DetectorFlags,
        opts: &ServeOptions,
        check: impl FnOnce(SocketAddr),
    ) -> String {
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let handle = scope
                .spawn(|| serve_until(input, flags, opts, &stop, |addr| tx.send(addr).unwrap()));
            let addr = rx.recv().unwrap();
            check(addr);
            stop.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        })
    }

    #[test]
    fn serve_answers_metrics_healthz_and_slow_while_ingesting() {
        let input = fixture("serve.tsv");
        let summary = with_server(&input, &flags(1), &opts(128, 10), |addr| {
            // Liveness is unconditional; health joins it once ready.
            let (head, body) = get(addr, "/livez");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert_eq!(body, "ok\n");
            wait_ready(addr);
            let (head, body) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert_eq!(body, "ok\n");

            let (head, body) = get(addr, "/metrics");
            assert!(head.contains("application/openmetrics-text"), "{head}");
            assert!(body.contains("bed_ingest_count_total"), "{body}");
            assert!(body.contains("bed_trace_sampled_total"), "{body}");
            assert!(body.contains("bed_epoch_published_total"), "{body}");
            // Tracer self-health, staleness gauges, and the profiler ride
            // the same scrape.
            assert!(body.contains("bed_trace_dropped_total"), "{body}");
            assert!(body.contains("bed_epoch_lag_arrivals"), "{body}");
            assert!(body.contains("bed_profile_ticks_total"), "{body}");
            assert!(body.ends_with("# EOF\n"), "{body}");

            // The profiler thread ticks at 20ms; folded stacks follow.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (head, folded) = get(addr, "/profile");
                assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                if folded.lines().any(|l| l.starts_with("bed;")) {
                    break;
                }
                assert!(Instant::now() < deadline, "no profiler output: {folded}");
                std::thread::sleep(Duration::from_millis(25));
            }

            // The watch query is traced (sample=1), so the span ring has
            // content for /trace/recent.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (head, lines) = get(addr, "/trace/recent");
                assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                if lines.contains("query.bursty_events") {
                    break;
                }
                assert!(Instant::now() < deadline, "no spans recorded: {lines}");
                std::thread::sleep(Duration::from_millis(25));
            }

            // Threshold 0 captures every traced query, so the watch query
            // must land in the slow log shortly.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (_, slow) = get(addr, "/slow");
                if slow.contains("query.bursty_events") {
                    break;
                }
                assert!(Instant::now() < deadline, "no slow query captured: {slow}");
                std::thread::sleep(Duration::from_millis(25));
            }

            let (head, _) = get(addr, "/nope");
            assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        });
        assert!(summary.contains("served"), "{summary}");
        assert!(summary.contains("ingested"), "{summary}");
        assert!(summary.contains("published"), "{summary}");
    }

    #[test]
    fn query_answers_all_five_kinds_from_published_epochs() {
        let input = fixture("serve-query.tsv");
        // Two shards: /query must fan out coherently, not just read one cell.
        with_server(&input, &flags(2), &opts(256, 0), |addr| {
            wait_ready(addr);
            // Wait for the post-drain publish: its epoch covers the full
            // stream (300 base + 50×6 burst arrivals).
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (head, body) = get(addr, "/query?kind=point&event=2&t=299&tau=40");
                assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
                assert!(body.contains("\"kind\":\"point\""), "{body}");
                assert!(body.contains("\"trace_id\":\""), "{body}");
                assert!(body.contains("\"epoch\":{\"generation\":"), "{body}");
                if body.contains("\"arrivals\":600") {
                    assert!(body.contains("\"last_ts\":299"), "{body}");
                    break;
                }
                assert!(Instant::now() < deadline, "drain publish never arrived: {body}");
                std::thread::sleep(Duration::from_millis(20));
            }

            let (head, body) =
                get(addr, "/query?kind=bursty_times&event=2&theta=20&tau=40&horizon=299");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"samples\":[["), "{body}");

            let (head, body) = get(addr, "/query?kind=series&event=2&end=299&step=50&tau=40");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"samples\":[[0,"), "{body}");

            let (head, body) = get(addr, "/query?kind=top_k&event=2&k=3&tau=40&horizon=299");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"samples\":["), "{body}");

            let (head, body) =
                post(addr, "/query", r#"{"kind":"bursty_events","t":299,"theta":20,"tau":40}"#);
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"hits\":[{\"event\":2,"), "{body}");
            assert!(body.contains("\"stats\":{\"point_queries\":"), "{body}");

            let (_, exact) = post(
                addr,
                "/query",
                r#"{"kind":"bursty_events","t":299,"theta":20,"tau":40,"strategy":"exact_scan"}"#,
            );
            assert!(exact.contains("\"hits\":[{\"event\":2,"), "{exact}");
        });
    }

    #[test]
    fn query_rejects_bad_requests_with_typed_errors() {
        let input = fixture("serve-errors.tsv");
        with_server(&input, &flags(1), &opts(8_192, 0), |addr| {
            wait_ready(addr);
            // Malformed JSON body.
            let (head, body) = post(addr, "/query", "{\"kind\":");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("malformed JSON"), "{body}");

            // A JSON body that is not an object.
            let (head, body) = post(addr, "/query", "[1,2,3]");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("JSON object"), "{body}");

            // Unknown query kind.
            let (head, body) = get(addr, "/query?kind=warp&event=1&t=1&tau=1");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("unknown query kind 'warp'"), "{body}");

            // Missing fields.
            let (head, body) = get(addr, "/query?kind=point&event=1");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("missing field"), "{body}");

            // τ = 0 is rejected before the detector sees it.
            let (head, body) = get(addr, "/query?kind=point&event=1&t=10&tau=0");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("error"), "{body}");

            // Out-of-universe event becomes the detector's typed error.
            let (head, body) = get(addr, "/query?kind=point&event=99&t=10&tau=40");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("error"), "{body}");

            // Negative event id is a field error, not a panic.
            let (head, body) = get(addr, "/query?kind=point&event=-3&t=10&tau=40");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("'event'"), "{body}");

            // Garbage client trace ids are refused, not adopted.
            let (head, body) = get(addr, "/query?kind=point&event=1&t=10&tau=40&trace_id=zz");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            assert!(body.contains("'trace_id'"), "{body}");

            // A malformed /trace id is a 400, an unknown one a 404.
            let (head, _) = get(addr, "/trace/not-hex");
            assert!(head.starts_with("HTTP/1.1 400"), "{head}");
            let (head, body) = get(addr, "/trace/00000000deadbeef");
            assert!(head.starts_with("HTTP/1.1 404"), "{head}");
            assert!(body.contains("no spans recorded"), "{body}");

            // Oversized declared body → 413 without reading it.
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "POST /query HTTP/1.1\r\nHost: bed\r\nContent-Length: 100000\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

            // Known path, wrong method.
            let (head, _) = post(addr, "/metrics", "");
            assert!(head.starts_with("HTTP/1.1 405"), "{head}");

            // The server is still healthy after all of the above.
            let (head, _) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        });
    }

    #[test]
    fn serve_rejects_non_get_and_survives_garbage() {
        let input = fixture("serve-bad.tsv");
        with_server(&input, &flags(1), &opts(8_192, 0), |addr| {
            // DELETE on a known path is refused but answered.
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "DELETE /metrics HTTP/1.1\r\nHost: bed\r\n\r\n").unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

            // a connection that sends nothing and closes is ignored
            drop(TcpStream::connect(addr).unwrap());

            // the server still answers afterwards
            let (head, _) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        });
    }

    #[test]
    fn in_flight_response_finishes_after_shutdown_request() {
        let input = fixture("serve-shutdown.tsv");
        let stop = AtomicBool::new(false);
        let o = opts(8_192, 0);
        let f = flags(1);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let handle =
                scope.spawn(|| serve_until(&input, &f, &o, &stop, |addr| tx.send(addr).unwrap()));
            let addr = rx.recv().unwrap();
            wait_ready(addr);

            // Open a request but stall before the blank line, then request
            // shutdown while the handler is mid-read.
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET /healthz HTTP/1.1\r\nHost: bed\r\n").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(120));
            stop.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(60));
            write!(s, "\r\n").unwrap();
            s.flush().unwrap();

            // The response still completes: the scope joins the connection
            // thread before serve_until returns.
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.ends_with("ok\n"), "{resp}");

            let summary = handle.join().unwrap().unwrap();
            assert!(summary.contains("served"), "{summary}");
        });
    }

    /// Extracts the first `"key":<digits>` value after `key` in `body`.
    fn json_u64(body: &str, key: &str) -> u64 {
        let needle = format!("\"{key}\":");
        let at = body.find(&needle).unwrap_or_else(|| panic!("no {key} in {body}"));
        body[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("bad {key} in {body}"))
    }

    #[test]
    fn readiness_gates_query_until_genesis() {
        let input = fixture("serve-ready.tsv");
        let mut o = opts(128, 0);
        // Hold ingest back so the pre-genesis state is observable.
        o.ingest_delay_ms = 600;
        with_server(&input, &flags(1), &o, |addr| {
            // Liveness never depends on readiness.
            let (head, body) = get(addr, "/livez");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert_eq!(body, "ok\n");

            // Before genesis: /readyz and /healthz are 503 with a reason,
            // and /query refuses rather than dereferencing an empty epoch.
            let (head, body) = get(addr, "/readyz");
            assert!(head.starts_with("HTTP/1.1 503"), "{head} {body}");
            assert!(body.contains("\"ready\":false"), "{body}");
            assert!(body.contains("no epoch published"), "{body}");
            let (head, body) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 503"), "{head} {body}");
            assert!(body.contains("no epoch published"), "{body}");
            let (head, body) = get(addr, "/query?kind=point&event=1&t=10&tau=40");
            assert!(head.starts_with("HTTP/1.1 503"), "{head} {body}");
            assert!(body.contains("not ready"), "{body}");

            // After genesis the same routes flip to 200.
            wait_ready(addr);
            let (head, _) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            let (head, body) = get(addr, "/query?kind=point&event=1&t=10&tau=40");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
        });
    }

    #[test]
    fn state_dir_probe_feeds_readiness() {
        let input = fixture("serve-statedir.tsv");
        let mut o = opts(128, 0);
        o.state_dir = Some("/nonexistent/bed-serve-state".into());
        with_server(&input, &flags(1), &o, |addr| {
            // Even once the epoch publishes, an unwritable state dir keeps
            // readiness false — and names the directory.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (head, body) = get(addr, "/readyz");
                assert!(head.starts_with("HTTP/1.1 503"), "{head} {body}");
                assert!(body.contains("\"ready\":false"), "{body}");
                if !body.contains("no epoch published") {
                    assert!(body.contains("not writable"), "{body}");
                    break;
                }
                assert!(Instant::now() < deadline, "genesis never published: {body}");
                std::thread::sleep(Duration::from_millis(10));
            }
        });
    }

    #[test]
    fn client_trace_id_propagates_to_spans_and_tree() {
        let input = fixture("serve-trace.tsv");
        // sample=1: every query is traced into the ring.
        with_server(&input, &flags(1), &opts(128, 0), |addr| {
            wait_ready(addr);
            let (head, body) = get(addr, "/query?kind=point&event=2&t=200&tau=40&trace_id=abc123");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"trace_id\":\"0000000000abc123\""), "{body}");

            // The adopted id is joinable: /trace/<id> assembles the tree.
            let (head, tree) = get(addr, "/trace/0000000000abc123");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {tree}");
            assert!(tree.contains("\"trace_id\":\"0000000000abc123\""), "{tree}");
            assert!(tree.contains("query.point"), "{tree}");

            // The ring view carries the same span.
            let (_, lines) = get(addr, "/trace/recent");
            assert!(lines.contains("0000000000abc123"), "{lines}");

            // Minted ids differ per request and are echoed in the body.
            let (_, a) = get(addr, "/query?kind=point&event=2&t=200&tau=40");
            let (_, b) = get(addr, "/query?kind=point&event=2&t=200&tau=40");
            let id_of = |body: &str| {
                let at = body.find("\"trace_id\":\"").unwrap() + "\"trace_id\":\"".len();
                body[at..at + 16].to_string()
            };
            assert_ne!(id_of(&a), id_of(&b), "{a} {b}");
        });
    }

    #[test]
    fn explain_reports_stages_path_and_epoch() {
        let input = fixture("serve-explain.tsv");
        with_server(&input, &flags(2), &opts(256, 0), |addr| {
            wait_ready(addr);
            // Wait for the drain publish so answers cover the burst.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (_, body) = get(addr, "/query?kind=point&event=2&t=299&tau=40");
                if body.contains("\"arrivals\":600") {
                    break;
                }
                assert!(Instant::now() < deadline, "drain publish never arrived: {body}");
                std::thread::sleep(Duration::from_millis(20));
            }

            let (head, body) =
                get(addr, "/query?kind=bursty_events&t=299&theta=20&tau=40&explain=1");
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            assert!(body.contains("\"explain\":{"), "{body}");
            // Kernel stage time can never exceed the serve-measured root.
            let root = json_u64(&body, "root_ns");
            let stages = json_u64(&body, "cell_probe_ns")
                + json_u64(&body, "median_combine_ns")
                + json_u64(&body, "hierarchy_prune_ns");
            assert!(stages <= root, "stage sum {stages} > root {root}: {body}");
            // Published epochs are finalized, so probes take the SoA bank
            // path, and the pruned strategy names itself.
            assert!(body.contains("\"path\":\"bank\""), "{body}");
            assert!(body.contains("\"strategy\":\"pruned\""), "{body}");
            assert!(json_u64(&body, "generation") > 0, "{body}");

            // Point explains carry the retention tier (null when untired).
            let (_, body) = get(addr, "/query?kind=point&event=2&t=299&tau=40&explain=1");
            assert!(body.contains("\"explain\":{"), "{body}");
            assert!(body.contains("\"tier\":"), "{body}");

            // explain=0 and absence both skip the block.
            let (_, body) = get(addr, "/query?kind=point&event=2&t=299&tau=40&explain=0");
            assert!(!body.contains("\"explain\""), "{body}");
        });
    }
}
