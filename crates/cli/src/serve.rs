//! `bed serve` — a hand-rolled HTTP/1.1 scrape endpoint over a live
//! ingest.
//!
//! The container builds offline, so there is no HTTP framework: a
//! non-blocking [`TcpListener`] accept loop parses just enough of HTTP/1.1
//! to answer three `GET` routes, always closing the connection afterwards:
//!
//! - `/metrics` — the detector's metrics merged with the tracer's own,
//!   rendered as OpenMetrics text exposition;
//! - `/healthz` — liveness (`ok`);
//! - `/slow` — the tracer's slow-query log as a JSON array.
//!
//! While the responder runs, a background thread drains the input TSV
//! stream into the detector and fires a periodic traced "watch"
//! bursty-event query, so the slow log and query metrics carry live
//! content without an external client. Shutdown is cooperative: the
//! `SIGTERM`/`SIGINT` handler installed by `main` (or a test harness)
//! flips an [`AtomicBool`] and the accept loop notices within one poll
//! interval, then joins the ingest thread and returns a summary line.

use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bed_core::{
    AnyDetector, QueryRequest, QueryScratch, QueryStrategy, Traceable as _, Tracer, TracerConfig,
};
use bed_stream::{BurstSpan, EventId, Timestamp};

use crate::args::DetectorFlags;
use crate::commands::{detector_from_flags, read_elements};
use crate::CliError;

/// Process-wide shutdown flag flipped by the signal handler in `main`.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Requests a cooperative shutdown of a running `bed serve` loop.
///
/// Async-signal-safe: a single atomic store, so `main` may call it from a
/// `SIGTERM`/`SIGINT` handler.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Knobs for [`serve`] beyond detector construction.
#[derive(Debug, Clone)]
pub(crate) struct ServeOptions {
    /// Listen address; port 0 binds any free port (the bound address is
    /// printed before serving starts).
    pub addr: String,
    /// Trace 1 in N queries (0 disables tracing).
    pub sample: u64,
    /// Slow-query capture threshold in ns (0 captures every traced query).
    pub slow_threshold_ns: u64,
    /// θ of the periodic watch query.
    pub watch_theta: f64,
    /// τ of the periodic watch query.
    pub watch_tau: u64,
    /// Milliseconds between watch queries (0 disables the watcher).
    pub watch_every_ms: u64,
}

/// Runs the scrape endpoint until `SIGTERM`/`SIGINT`, returning a summary.
pub(crate) fn serve(
    input: &str,
    flags: &DetectorFlags,
    opts: &ServeOptions,
) -> Result<String, CliError> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    serve_until(input, flags, opts, &SHUTDOWN, |addr| {
        println!("bed serve listening on http://{addr}/ (GET /metrics /healthz /slow)");
    })
}

/// [`serve`] with an injected stop flag and bound-address callback, so the
/// loop is drivable in-process by tests.
fn serve_until(
    input: &str,
    flags: &DetectorFlags,
    opts: &ServeOptions,
    stop: &AtomicBool,
    on_bound: impl FnOnce(SocketAddr),
) -> Result<String, CliError> {
    let els = read_elements(input)?;
    let total = els.len();
    let mut det = detector_from_flags(flags)?;
    let tracer = Arc::new(Tracer::new(TracerConfig {
        sample_every: opts.sample,
        slow_threshold_ns: opts.slow_threshold_ns,
        dump_slow_on_drop: true,
        ..TracerConfig::default()
    }));
    det.set_tracer(Arc::clone(&tracer));
    let det = Mutex::new(det);

    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    on_bound(bound);

    let requests = AtomicU64::new(0);
    let ingested = AtomicU64::new(0);

    let result = std::thread::scope(|scope| {
        scope.spawn(|| ingest_loop(&els, &det, stop, opts, &ingested));
        let r = accept_loop(&listener, &det, &tracer, stop, &requests);
        // Any exit from the accept loop (including an error) must release
        // the ingest thread before the scope joins it.
        stop.store(true, Ordering::SeqCst);
        r
    });
    result?;

    Ok(format!(
        "served {} requests on {bound}; ingested {}/{total} elements\n",
        requests.load(Ordering::Relaxed),
        ingested.load(Ordering::Relaxed),
    ))
}

/// Polls for connections until `stop`; each connection handles exactly one
/// request and is closed. A failure on one connection never takes the
/// server down.
fn accept_loop(
    listener: &TcpListener,
    det: &Mutex<AnyDetector>,
    tracer: &Tracer,
    stop: &AtomicBool,
    requests: &AtomicU64,
) -> Result<(), CliError> {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                requests.fetch_add(1, Ordering::Relaxed);
                let _ = handle_connection(stream, det, tracer);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Polling (rather than a blocking accept) keeps the loop
                // responsive to the shutdown flag: a blocking accept would
                // simply restart after the signal handler returns.
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(CliError::Io(e)),
        }
    }
    Ok(())
}

/// Drains the stream into the detector in small locked chunks, firing the
/// watch query between chunks and after the drain until shutdown.
fn ingest_loop(
    els: &[(EventId, Timestamp)],
    det: &Mutex<AnyDetector>,
    stop: &AtomicBool,
    opts: &ServeOptions,
    ingested: &AtomicU64,
) {
    const CHUNK: usize = 512;
    let watch_period = Duration::from_millis(opts.watch_every_ms.max(1));
    let mut scratch = QueryScratch::new();
    let mut last_watch = Instant::now();
    let mut last_ts = Timestamp(0);
    for chunk in els.chunks(CHUNK) {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut d = det.lock().expect("detector lock");
            for &(event, ts) in chunk {
                if d.ingest(event, ts).is_ok() {
                    last_ts = ts;
                }
            }
        }
        ingested.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        if opts.watch_every_ms > 0 && last_watch.elapsed() >= watch_period {
            watch_query(det, opts, last_ts, &mut scratch);
            last_watch = Instant::now();
        }
    }
    det.lock().expect("detector lock").finalize();
    if opts.watch_every_ms == 0 {
        return;
    }
    // The stream is drained; keep the watch firing so scrapes see fresh
    // latency samples (and `/slow` has content) until shutdown.
    watch_query(det, opts, last_ts, &mut scratch);
    last_watch = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(watch_period.min(Duration::from_millis(50)));
        if last_watch.elapsed() >= watch_period {
            watch_query(det, opts, last_ts, &mut scratch);
            last_watch = Instant::now();
        }
    }
}

/// One traced bursty-event query at the newest ingested instant.
/// Best-effort: single-event sketches reject it, which is fine — the
/// point is to exercise the traced query path, not the answer.
fn watch_query(
    det: &Mutex<AnyDetector>,
    opts: &ServeOptions,
    t: Timestamp,
    scratch: &mut QueryScratch,
) {
    let Ok(tau) = BurstSpan::new(opts.watch_tau) else { return };
    let request = QueryRequest::BurstyEvents {
        t,
        theta: opts.watch_theta,
        tau,
        strategy: QueryStrategy::Pruned,
    };
    let d = det.lock().expect("detector lock");
    let _ = d.queries().query_reusing(&request, scratch);
}

/// Answers one request on `stream` and closes it.
fn handle_connection(
    mut stream: TcpStream,
    det: &Mutex<AnyDetector>,
    tracer: &Tracer,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let Some((method, path)) = read_request_line(&mut stream)? else {
        return Ok(());
    };
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match path.as_str() {
            "/metrics" => {
                let snap = det.lock().expect("detector lock").queries().metrics();
                let merged = snap.merge(&tracer.metrics_snapshot());
                (
                    "200 OK",
                    "application/openmetrics-text; version=1.0.0; charset=utf-8",
                    merged.to_openmetrics(),
                )
            }
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            "/slow" => ("200 OK", "application/json; charset=utf-8", tracer.slow_json()),
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };
    write_response(&mut stream, status, content_type, &body)
}

/// Reads up to the end of the request headers and returns `(method, path)`
/// from the request line, or `None` for an empty/garbled request.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<Option<(String, String)>> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // A stalled client's request is served from whatever arrived.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || path.is_empty() {
        return Ok(None);
    }
    Ok(Some((method.to_string(), path.to_string())))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn fixture(name: &str) -> String {
        let dir = std::env::temp_dir().join("bed-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut text = String::new();
        for t in 0..300u64 {
            text.push_str(&format!("{}\t{t}\n", t % 8));
            if t >= 250 {
                for _ in 0..6 {
                    text.push_str(&format!("2\t{t}\n"));
                }
            }
        }
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: bed\r\nConnection: close\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let split = resp.find("\r\n\r\n").expect("header/body split");
        (resp[..split].to_string(), resp[split + 4..].to_string())
    }

    #[test]
    fn serve_answers_metrics_healthz_and_slow_while_ingesting() {
        let input = fixture("serve.tsv");
        let stop = AtomicBool::new(false);
        let opts = ServeOptions {
            addr: "127.0.0.1:0".into(),
            sample: 1,
            slow_threshold_ns: 0,
            watch_theta: 1.0,
            watch_tau: 40,
            watch_every_ms: 10,
        };
        let flags = DetectorFlags {
            variant: "pbe2".into(),
            eta: 128,
            gamma: 2.0,
            universe: Some(8),
            epsilon: 0.01,
            delta: 0.05,
            flat: false,
            seed: 7,
            shards: 1,
        };
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let handle = scope
                .spawn(|| serve_until(&input, &flags, &opts, &stop, |addr| tx.send(addr).unwrap()));
            let addr = rx.recv().unwrap();

            let (head, body) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert_eq!(body, "ok\n");

            let (head, body) = get(addr, "/metrics");
            assert!(head.contains("application/openmetrics-text"), "{head}");
            assert!(body.contains("bed_ingest_count_total"), "{body}");
            assert!(body.contains("bed_trace_sampled_total"), "{body}");
            assert!(body.ends_with("# EOF\n"), "{body}");

            // Threshold 0 captures every traced query, so the watch query
            // must land in the slow log shortly.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (_, slow) = get(addr, "/slow");
                if slow.contains("query.bursty_events") {
                    break;
                }
                assert!(Instant::now() < deadline, "no slow query captured: {slow}");
                std::thread::sleep(Duration::from_millis(25));
            }

            let (head, _) = get(addr, "/nope");
            assert!(head.starts_with("HTTP/1.1 404"), "{head}");

            stop.store(true, Ordering::SeqCst);
            let summary = handle.join().unwrap().unwrap();
            assert!(summary.contains("served"), "{summary}");
            assert!(summary.contains("ingested"), "{summary}");
        });
    }

    #[test]
    fn serve_rejects_non_get_and_survives_garbage() {
        let input = fixture("serve-bad.tsv");
        let stop = AtomicBool::new(false);
        let opts = ServeOptions {
            addr: "127.0.0.1:0".into(),
            sample: 0,
            slow_threshold_ns: 0,
            watch_theta: 1.0,
            watch_tau: 40,
            watch_every_ms: 0,
        };
        let flags = DetectorFlags {
            variant: "pbe2".into(),
            eta: 128,
            gamma: 2.0,
            universe: Some(8),
            epsilon: 0.01,
            delta: 0.05,
            flat: false,
            seed: 7,
            shards: 1,
        };
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let handle = scope
                .spawn(|| serve_until(&input, &flags, &opts, &stop, |addr| tx.send(addr).unwrap()));
            let addr = rx.recv().unwrap();

            // POST is refused but answered
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "POST /metrics HTTP/1.1\r\nHost: bed\r\n\r\n").unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

            // a connection that sends nothing and closes is ignored
            drop(TcpStream::connect(addr).unwrap());

            // the server still answers afterwards
            let (head, _) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");

            stop.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap();
        });
    }
}
