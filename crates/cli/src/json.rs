//! Minimal JSON parsing for the `/query` endpoint.
//!
//! The container builds offline, so there is no serde; this is a small
//! recursive-descent parser for the subset a query body needs — objects,
//! arrays, strings (with escapes), numbers, booleans, null — hardened the
//! way a network-facing parser must be: depth-limited, and every error is
//! a typed message (never a panic). Integers are kept exact (`i64`)
//! rather than routed through `f64`, because event ids and timestamps are
//! `u32`/`u64`.

use std::fmt::Write as _;

/// Maximum nesting depth accepted (a query body needs 2).
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction/exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order preserved; duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and absent keys).
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected '{}' at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates degrade to the replacement char —
                            // query bodies are ASCII in practice.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched; advance by
                    // whole chars so slicing stays on boundaries.
                    let rest = &self.bytes[self.pos..];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            // SAFETY-free: take the valid prefix.
                            std::str::from_utf8(&rest[..e.valid_up_to()]).unwrap()
                        }
                        Err(_) => return Err(format!("invalid utf-8 at byte {}", self.pos)),
                    };
                    let ch = s.chars().next().ok_or("invalid utf-8 in string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_shaped_documents() {
        let v = parse(r#"{"kind":"point","event":2,"t":250,"tau":40,"theta":1.5}"#).unwrap();
        assert_eq!(v.get("kind"), Some(&Json::Str("point".into())));
        assert_eq!(v.get("event"), Some(&Json::Int(2)));
        assert_eq!(v.get("theta"), Some(&Json::Float(1.5)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("{\"t\":18446744073709551615}").unwrap();
        // Too big for i64 → falls back to float rather than erroring.
        assert!(matches!(v.get("t"), Some(Json::Float(_))));
        let v = parse("{\"t\":9223372036854775807}").unwrap();
        assert_eq!(v.get("t"), Some(&Json::Int(i64::MAX)));
    }

    #[test]
    fn rejects_garbage_with_messages_not_panics() {
        for bad in ["", "{", "{\"a\":}", "[1,", "{\"a\":1}x", "\"\\q\"", "nul", "--4"] {
            let e = parse(bad).unwrap_err();
            assert!(!e.is_empty(), "{bad}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn strings_escapes_and_duplicates() {
        let v = parse(r#"{"a":"x\n\"y\"","a":"last wins","u":"\u0041"}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Str("last wins".into())));
        assert_eq!(v.get("u"), Some(&Json::Str("A".into())));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn num_rendering() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
