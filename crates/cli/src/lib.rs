//! # bed-cli — command-line frontend for historical burstiness sketches
//!
//! ```text
//! bed generate --dataset olympics --n 200000 --out stream.tsv
//! bed build    --input stream.tsv --universe 864 --variant pbe2 --gamma 8 --out rio.bed
//! bed build    --input stream.tsv --universe 864 --shards 4 --out rio.beds
//! bed ingest   --input stream.tsv --universe 864 --wal rio.wal --every 50000 --out rio.ckpt
//! bed restore  --snapshot rio.ckpt --wal rio.wal --out rio.bed
//! bed info     --sketch rio.bed
//! bed point    --sketch rio.bed --event 0 --t 1814400 --tau 86400
//! bed times    --sketch rio.bed --event 0 --theta 1000 --tau 86400 --horizon 2678400
//! bed events   --sketch rio.bed --t 1814400 --theta 1000 --tau 86400
//! bed stats    --sketch rio.bed --format openmetrics
//! bed serve    --input stream.tsv --universe 864 --addr 127.0.0.1:9184
//! ```
//!
//! The library half (`run`) is process-free and returns the textual output,
//! so the whole surface is unit-testable; `main.rs` is a four-line shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
mod json;
pub mod serve;

use std::fmt;

pub use args::Command;

/// CLI-level errors (argument parsing, I/O, sketch errors).
#[derive(Debug)]
pub enum CliError {
    /// Bad or missing arguments; the string is a usage hint.
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Input data was malformed.
    BadInput(String),
    /// An underlying sketch error.
    Bed(bed_core::BedError),
    /// A persisted sketch failed to decode.
    Codec(bed_stream::CodecError),
    /// Checkpointing or recovery failed (snapshot/WAL damage, config
    /// mismatch, replay rejection).
    Recovery(bed_core::RecoveryError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "usage error: {u}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::BadInput(m) => write!(f, "bad input: {m}"),
            CliError::Bed(e) => write!(f, "{e}"),
            CliError::Codec(e) => write!(f, "corrupt sketch file: {e}"),
            CliError::Recovery(e) => write!(f, "recovery error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<bed_core::BedError> for CliError {
    fn from(e: bed_core::BedError) -> Self {
        CliError::Bed(e)
    }
}
impl From<bed_stream::CodecError> for CliError {
    fn from(e: bed_stream::CodecError) -> Self {
        CliError::Codec(e)
    }
}
impl From<bed_core::RecoveryError> for CliError {
    fn from(e: bed_core::RecoveryError) -> Self {
        // Pure decode failures keep their "corrupt sketch file" rendering
        // so corrupt snapshots and corrupt sketches read the same.
        match e {
            bed_core::RecoveryError::Codec(c) => CliError::Codec(c),
            other => CliError::Recovery(other),
        }
    }
}

/// Parses `argv[1..]` and executes the command, returning its stdout text.
pub fn run<I, S>(argv: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let command = args::parse(argv)?;
    commands::execute(command)
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "bed — bursty event detection throughout histories

USAGE:
    bed <command> [options]

COMMANDS:
    generate   synthesise a workload stream as TSV (event_id<TAB>timestamp)
    build      build a sketch from a TSV stream and persist it
    ingest     durable build: write-ahead log + periodic crash-safe checkpoints
    checkpoint wrap an existing sketch in a CRC-validated BEDS v2 snapshot
    restore    recover a sketch from a snapshot plus the WAL tail
    info       describe a persisted sketch
    point      point query: burstiness of an event at a time
    ranges     interval bursty-time query (single-event sketches)
    series     burstiness time series of one event
    times      bursty-time query: when was an event bursty?
    events     bursty-event query: which events were bursty at a time?
    stats      metrics snapshot of a persisted sketch (--format json|text|openmetrics)
    serve      ingest a stream while serving queries over HTTP: GET/POST /query
               (JSON, answered from the latest published epoch; every answer
               carries a trace_id, add explain=1 for a per-stage breakdown),
               plus GET /metrics, /livez, /readyz, /healthz, /slow,
               /trace/recent, /trace/<id>, /profile
    trace      fetch recent spans (or one assembled trace tree by id) from a
               running `bed serve`
    profile    fetch the self-profiler's folded-stack dump from a running
               `bed serve`

Query commands accept --explain to append a per-stage timing breakdown.

Run `bed <command> --help` semantics: every command lists its options on a
usage error."
}
