//! Kill-and-restore round trip through the real `bed` binary.
//!
//! Spawns `bed ingest --wal` as a child process, SIGKILLs it mid-flight,
//! then runs `bed restore` and checks the recovered sketch is bit-for-bit
//! identical to a golden `bed build` over exactly the recovered prefix of
//! the stream — and answers queries identically.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use bed_core::AnyDetector;
use bed_stream::Codec;

const UNIVERSE: u32 = 16;
const N: usize = 60_000;

/// Shared sketch-shape arguments; must match between `ingest` and the
/// golden `build` for the bit-for-bit comparison to be meaningful.
const BASE: [&str; 10] =
    ["--universe", "16", "--gamma", "1", "--seed", "5", "--epsilon", "0.01", "--delta", "0.05"];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bed-kill-restore")
        .join(format!("pid-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn stream_text() -> String {
    let mut text = String::new();
    for i in 0..N {
        // A mildly bursty, fully deterministic workload.
        let event = if i % 97 < 9 { 3 } else { (i % UNIVERSE as usize) as u32 };
        let ts = (i / 8) as u64;
        text.push_str(&format!("{event}\t{ts}\n"));
    }
    text
}

#[test]
fn sigkill_mid_ingest_then_restore_matches_golden_build() {
    let dir = scratch("kill");
    let tsv = dir.join("stream.tsv");
    let text = stream_text();
    fs::write(&tsv, &text).unwrap();

    // Retry with progressively later kills: an extremely early SIGKILL can
    // land before the WAL header is even written, which is a legitimate
    // "no state" outcome rather than a recovery failure.
    let mut recovered: Option<(PathBuf, String)> = None;
    for (attempt, delay_ms) in [250u64, 500, 1000, 2000].into_iter().enumerate() {
        let snap = dir.join(format!("a{attempt}.ckpt"));
        let wal = dir.join(format!("a{attempt}.wal"));
        let restored = dir.join(format!("a{attempt}.bed"));

        let mut child = Command::new(env!("CARGO_BIN_EXE_bed"))
            .arg("ingest")
            .args(["--input", tsv.to_str().unwrap()])
            .args(["--out", snap.to_str().unwrap()])
            .args(["--wal", wal.to_str().unwrap()])
            .args(["--every", "8"])
            .args(BASE)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn bed ingest");
        std::thread::sleep(Duration::from_millis(delay_ms));
        // On unix `kill()` delivers SIGKILL: no destructors, no flush.
        let _ = child.kill();
        let _ = child.wait();

        let out = Command::new(env!("CARGO_BIN_EXE_bed"))
            .arg("restore")
            .args(["--snapshot", snap.to_str().unwrap()])
            .args(["--wal", wal.to_str().unwrap()])
            .args(["--out", restored.to_str().unwrap()])
            .output()
            .expect("run bed restore");
        if out.status.success() {
            recovered = Some((restored, String::from_utf8_lossy(&out.stdout).into_owned()));
            break;
        }
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            err.contains("nothing to recover"),
            "restore failed for a reason other than a too-early kill: {err}"
        );
    }
    let (restored, message) = recovered.expect("restore never succeeded, even after 2s of ingest");
    assert!(message.contains("restored"), "{message}");

    // How far did the acknowledged state get before the kill?
    let bytes = fs::read(&restored).unwrap();
    let det = AnyDetector::from_bytes(&bytes).unwrap();
    let arrivals = det.arrivals() as usize;
    assert!(arrivals > 0, "recovered an empty detector");
    assert!(arrivals <= N);

    // Golden: a plain `bed build` over exactly the recovered prefix.
    let prefix_tsv = dir.join("prefix.tsv");
    let prefix: String = text.lines().take(arrivals).map(|l| format!("{l}\n")).collect();
    fs::write(&prefix_tsv, prefix).unwrap();
    let golden = dir.join("golden.bed");
    bed_cli::run(
        ["build", "--input", prefix_tsv.to_str().unwrap(), "--out", golden.to_str().unwrap()]
            .iter()
            .copied()
            .chain(BASE),
    )
    .unwrap();

    assert_eq!(
        fs::read(&restored).unwrap(),
        fs::read(&golden).unwrap(),
        "restored sketch is not bit-for-bit the golden build over {arrivals} arrivals"
    );

    // And the query surface agrees (first line names the file, so skip it).
    let t_max = ((arrivals.saturating_sub(1)) / 8) as u64;
    let qargs = ["--t", &t_max.to_string(), "--theta", "4", "--tau", "16"];
    let a = bed_cli::run(
        ["events", "--sketch", restored.to_str().unwrap()].iter().copied().chain(qargs),
    )
    .unwrap();
    let b =
        bed_cli::run(["events", "--sketch", golden.to_str().unwrap()].iter().copied().chain(qargs))
            .unwrap();
    assert_eq!(a.lines().skip(1).collect::<Vec<_>>(), b.lines().skip(1).collect::<Vec<_>>());

    let pargs = ["--event", "3", "--t", &t_max.to_string(), "--tau", "16"];
    let a = bed_cli::run(
        ["point", "--sketch", restored.to_str().unwrap()].iter().copied().chain(pargs),
    )
    .unwrap();
    let b =
        bed_cli::run(["point", "--sketch", golden.to_str().unwrap()].iter().copied().chain(pargs))
            .unwrap();
    assert_eq!(a.lines().skip(1).collect::<Vec<_>>(), b.lines().skip(1).collect::<Vec<_>>());

    let _ = fs::remove_dir_all(&dir);
}

/// A kill *after* ingest completes must restore to the full stream: the
/// final checkpoint covers the tail, so replay is a no-op.
#[test]
fn restore_after_clean_exit_replays_nothing() {
    let dir = scratch("clean");
    let tsv = dir.join("stream.tsv");
    // Small stream so the child finishes quickly.
    let text: String = (0..500).map(|i| format!("{}\t{}\n", i % 16, i / 4)).collect();
    fs::write(&tsv, &text).unwrap();
    let snap = dir.join("s.ckpt");
    let wal = dir.join("s.wal");
    let restored = dir.join("s.bed");

    let status = Command::new(env!("CARGO_BIN_EXE_bed"))
        .arg("ingest")
        .args(["--input", tsv.to_str().unwrap()])
        .args(["--out", snap.to_str().unwrap()])
        .args(["--wal", wal.to_str().unwrap()])
        .args(["--every", "100"])
        .args(BASE)
        .stdout(Stdio::null())
        .status()
        .expect("run bed ingest");
    assert!(status.success());

    let out = Command::new(env!("CARGO_BIN_EXE_bed"))
        .arg("restore")
        .args(["--snapshot", snap.to_str().unwrap()])
        .args(["--wal", wal.to_str().unwrap()])
        .args(["--out", restored.to_str().unwrap()])
        .output()
        .expect("run bed restore");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let msg = String::from_utf8_lossy(&out.stdout);
    assert!(msg.contains("0 replayed"), "expected a zero-replay restore: {msg}");

    let det = AnyDetector::from_bytes(&fs::read(&restored).unwrap()).unwrap();
    assert_eq!(det.arrivals(), 500);
    let _ = fs::remove_dir_all(&dir);
}
