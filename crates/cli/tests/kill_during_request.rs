//! `SIGTERM` during an in-flight request must not truncate the response.
//!
//! Drives the real `bed` binary: starts `bed serve` on port 0, opens a
//! connection, stalls the request halfway through its headers, delivers
//! `SIGTERM`, then completes the request — the full `200` response must
//! still arrive, and the process must exit cleanly with its summary line.
//! (The serve loop joins every in-flight connection thread before the
//! listener closes; this pins that from outside the process.)

#![cfg(unix)]

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

#[test]
fn sigterm_mid_request_finishes_the_response() {
    let dir = std::env::temp_dir().join("bed-kill-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("stream.tsv");
    let mut text = String::new();
    for t in 0..300u64 {
        text.push_str(&format!("{}\t{t}\n", t % 8));
    }
    std::fs::write(&input, text).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_bed"))
        .args([
            "serve",
            "--input",
            input.to_str().unwrap(),
            "--universe",
            "8",
            "--addr",
            "127.0.0.1:0",
            "--watch-every-ms",
            "0",
            "--publish-every",
            "128",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn bed serve");

    // The bound address is printed before serving starts.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split('/').next())
        .unwrap_or_else(|| panic!("no listen address in {line:?}"))
        .to_string();

    // Open a request and stall halfway through the headers, so the
    // connection handler is mid-read when the signal lands.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: bed\r\n").unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill failed");
    std::thread::sleep(Duration::from_millis(150));

    // Complete the request only after the shutdown was requested.
    write!(stream, "\r\n").unwrap();
    stream.flush().unwrap();

    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 200"), "truncated response: {response:?}");
    assert!(response.ends_with("ok\n"), "truncated body: {response:?}");

    let status = child.wait().expect("wait for bed serve");
    assert!(status.success(), "bed serve exited with {status}");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("served"), "missing summary: {rest:?}");
}
