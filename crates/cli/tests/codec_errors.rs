//! Codec error paths exercised through the CLI surface: damaged or alien
//! sketch files must produce a typed "corrupt sketch file" error from
//! `bed info` / `bed restore`, never a panic.

use std::fs;
use std::path::PathBuf;

use bed_cli::{run, CliError};

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bed-cli-codec-errors")
        .join(format!("pid-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_sample(dir: &std::path::Path) -> PathBuf {
    let tsv = dir.join("s.tsv");
    let text: String = (0..300).map(|i| format!("{}\t{}\n", i % 8, i / 3)).collect();
    fs::write(&tsv, text).unwrap();
    let out = dir.join("s.bed");
    run([
        "build",
        "--input",
        tsv.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--universe",
        "8",
        "--seed",
        "3",
    ])
    .unwrap();
    out
}

fn expect_codec_err(path: &std::path::Path) {
    let err = run(["info", "--sketch", path.to_str().unwrap()]).unwrap_err();
    match err {
        CliError::Codec(_) => {}
        other => panic!("expected a codec error for {}, got: {other}", path.display()),
    }
}

#[test]
fn info_rejects_damaged_sketches_with_typed_errors() {
    let dir = scratch();
    let good = build_sample(&dir);
    let bytes = fs::read(&good).unwrap();

    // Truncated header: not even a full magic tag.
    let p = dir.join("truncated-header.bed");
    fs::write(&p, &bytes[..3]).unwrap();
    expect_codec_err(&p);

    // Wrong magic: a format this CLI has never heard of.
    let p = dir.join("wrong-magic.bed");
    let mut alien = bytes.clone();
    alien[..4].copy_from_slice(b"ZZZZ");
    fs::write(&p, alien).unwrap();
    expect_codec_err(&p);

    // A CMPB record is a valid format elsewhere in the workspace, but not
    // a loadable top-level sketch.
    let p = dir.join("cmpb-magic.bed");
    let mut cmpb = bytes.clone();
    cmpb[..4].copy_from_slice(b"CMPB");
    fs::write(&p, cmpb).unwrap();
    expect_codec_err(&p);

    // Version from the future.
    let p = dir.join("future-version.bed");
    let mut future = bytes.clone();
    future[4..6].copy_from_slice(&902u16.to_le_bytes());
    fs::write(&p, future).unwrap();
    expect_codec_err(&p);

    // Mid-stream EOF: the record stops half way through.
    let p = dir.join("mid-eof.bed");
    fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
    expect_codec_err(&p);

    // The pristine file still loads, so the harness itself is sound.
    run(["info", "--sketch", good.to_str().unwrap()]).unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn error_text_names_the_corruption() {
    let dir = scratch();
    let good = build_sample(&dir);
    let mut bytes = fs::read(&good).unwrap();
    bytes[..4].copy_from_slice(b"ZZZZ");
    let p = dir.join("named.bed");
    fs::write(&p, bytes).unwrap();
    let msg = run(["info", "--sketch", p.to_str().unwrap()]).unwrap_err().to_string();
    assert!(msg.contains("corrupt sketch file"), "{msg}");
    let _ = fs::remove_dir_all(&dir);
}
