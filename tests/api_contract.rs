//! API-contract integration tests: error paths and misuse across the
//! public surface.

use bed::obs::Histogram;
use bed::{
    BedError, BurstDetector, BurstQueries, BurstSpan, EventId, MetricValue, MetricsSnapshot,
    PbeVariant, QueryRequest, QueryStrategy, ShardedDetector, TimeRange, Timestamp,
};

#[test]
fn builder_rejects_bad_parameters() {
    assert!(BurstDetector::builder()
        .variant(PbeVariant::Pbe1 { n_buf: 10, eta: 10 })
        .build()
        .is_err());
    assert!(BurstDetector::builder()
        .variant(PbeVariant::Pbe2 { gamma: -3.0, max_vertices: 64 })
        .build()
        .is_err());
    assert!(BurstDetector::builder().universe(8).accuracy(1.5, 0.1).build().is_err());
    assert!(BurstDetector::builder().universe(8).accuracy(0.1, 0.0).build().is_err());
}

#[test]
fn mode_mismatches_are_descriptive() {
    let mut single = BurstDetector::builder().single_event().build().unwrap();
    let err = single.ingest(EventId(0), Timestamp(0)).unwrap_err();
    assert!(matches!(err, BedError::WrongMode { .. }));
    assert!(err.to_string().contains("ingest"));

    let mut mixed = BurstDetector::builder().universe(4).build().unwrap();
    let err = mixed.ingest_single(Timestamp(0)).unwrap_err();
    assert!(matches!(err, BedError::WrongMode { .. }));
}

#[test]
fn timestamps_must_not_go_backwards() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    det.ingest(EventId(1), Timestamp(100)).unwrap();
    let err = det.ingest(EventId(2), Timestamp(99)).unwrap_err();
    assert!(err.to_string().contains("non-monotonic"));
    // the failed ingest must not corrupt state: same timestamp is still fine
    det.ingest(EventId(2), Timestamp(100)).unwrap();
    assert_eq!(det.arrivals(), 2);
}

#[test]
fn universe_bounds_are_enforced() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    let err = det.ingest(EventId(4), Timestamp(0)).unwrap_err();
    assert!(err.to_string().contains("universe"));
}

#[test]
fn burst_span_construction() {
    assert!(BurstSpan::new(0).is_err());
    let tau = BurstSpan::new(60).unwrap();
    assert_eq!(tau.ticks(), 60);
}

#[test]
fn queries_on_empty_detectors_are_sane() {
    let det = BurstDetector::builder().universe(16).build().unwrap();
    let tau = BurstSpan::new(10).unwrap();
    assert_eq!(det.point_query(EventId(3), Timestamp(100), tau), 0.0);
    assert_eq!(det.cumulative_frequency(EventId(3), Timestamp(100)), 0.0);
    let (hits, _) =
        det.bursty_events_with(Timestamp(100), 1.0, tau, QueryStrategy::Pruned).unwrap();
    assert!(hits.is_empty());
    assert!(det.bursty_times(EventId(3), 1.0, tau, Timestamp(1_000)).is_empty());
    assert_eq!(det.arrivals(), 0);
}

#[test]
fn finalize_is_idempotent() {
    let mut det =
        BurstDetector::builder().universe(4).variant(PbeVariant::pbe1(8)).build().unwrap();
    for t in 0..100u64 {
        det.ingest(EventId((t % 4) as u32), Timestamp(t)).unwrap();
    }
    det.finalize();
    let size = det.size_bytes();
    let tau = BurstSpan::new(10).unwrap();
    let b = det.point_query(EventId(0), Timestamp(99), tau);
    det.finalize();
    assert_eq!(det.size_bytes(), size);
    assert_eq!(det.point_query(EventId(0), Timestamp(99), tau), b);
}

#[test]
fn ingest_after_finalize_continues_the_stream() {
    let mut det =
        BurstDetector::builder().universe(4).variant(PbeVariant::pbe2(2.0)).build().unwrap();
    for t in 0..50u64 {
        det.ingest(EventId(0), Timestamp(t)).unwrap();
    }
    det.finalize();
    for t in 50..100u64 {
        det.ingest(EventId(0), Timestamp(t)).unwrap();
    }
    det.finalize();
    let f = det.cumulative_frequency(EventId(0), Timestamp(99));
    assert!((f - 100.0).abs() <= 4.0, "F̃ = {f}");
}

#[test]
fn errors_are_std_error_and_send_sync() {
    fn assert_properties<E: std::error::Error + Send + Sync + 'static>() {}
    assert_properties::<BedError>();
    assert_properties::<bed::stream::StreamError>();
}

#[test]
fn nonpositive_theta_is_a_typed_error_not_a_panic() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    det.ingest(EventId(0), Timestamp(0)).unwrap();
    let tau = BurstSpan::new(10).unwrap();
    for theta in [0.0, -5.0, f64::NAN] {
        for strategy in [QueryStrategy::Pruned, QueryStrategy::ExactScan] {
            let err = det.bursty_events_with(Timestamp(0), theta, tau, strategy).unwrap_err();
            assert!(err.to_string().contains("theta"), "{err}");
            let err = det
                .bursty_events_in_range_with(0, 4, Timestamp(0), theta, tau, strategy)
                .unwrap_err();
            assert!(err.to_string().contains("theta"), "{err}");
        }
    }
    // inverted id range is also a typed error
    let err = det
        .bursty_events_in_range_with(3, 3, Timestamp(0), 1.0, tau, QueryStrategy::Pruned)
        .unwrap_err();
    assert!(err.to_string().contains("inverted"), "{err}");
}

/// The deprecated aliases stay pinned to their `_with` replacements.
#[test]
#[allow(deprecated)]
fn deprecated_aliases_match_their_replacements() {
    let mut det = BurstDetector::builder().universe(8).build().unwrap();
    for t in 0..200u64 {
        det.ingest(EventId((t % 3) as u32), Timestamp(t)).unwrap();
        if t >= 150 {
            for _ in 0..6 {
                det.ingest(EventId(5), Timestamp(t)).unwrap();
            }
        }
    }
    det.finalize();
    let tau = BurstSpan::new(20).unwrap();
    let t = Timestamp(199);
    assert_eq!(
        det.bursty_events(t, 2.0, tau).unwrap(),
        det.bursty_events_with(t, 2.0, tau, QueryStrategy::Pruned).unwrap()
    );
    assert_eq!(
        det.bursty_events_scan(t, 2.0, tau).unwrap(),
        det.bursty_events_with(t, 2.0, tau, QueryStrategy::ExactScan).unwrap()
    );
    assert_eq!(
        det.bursty_events_in_range(2, 7, t, 2.0, tau).unwrap(),
        det.bursty_events_in_range_with(2, 7, t, 2.0, tau, QueryStrategy::Pruned).unwrap()
    );
}

/// Builds one plain and one sharded detector over the same stream in the
/// direct-indexed (collision-free) regime, where answers match bit for bit.
fn contract_pair() -> (BurstDetector, ShardedDetector) {
    let stream: Vec<(EventId, Timestamp)> = (0..400u64)
        .flat_map(|t| {
            let mut els = vec![(EventId((t % 8) as u32), Timestamp(t))];
            if (300..330).contains(&t) {
                els.extend(std::iter::repeat_n((EventId(6), Timestamp(t)), 8));
            }
            els
        })
        .collect();
    let mut plain = BurstDetector::builder()
        .universe(8)
        .variant(PbeVariant::pbe2(1.0))
        .seed(42)
        .build()
        .unwrap();
    for &(e, t) in &stream {
        plain.ingest(e, t).unwrap();
    }
    plain.finalize();
    let mut sharded = BurstDetector::builder()
        .universe(8)
        .variant(PbeVariant::pbe2(1.0))
        .seed(42)
        .shards(3)
        .build()
        .unwrap();
    sharded.ingest_batch(&stream).unwrap();
    sharded.finalize();
    (plain, sharded)
}

/// Both detectors answer every [`QueryRequest`] variant through a
/// `&dyn BurstQueries` with equal [`QueryResponse`]s (hits-only for
/// `BurstyEvents`, whose probe statistics legitimately depend on layout).
#[test]
fn dyn_query_round_trips_are_shard_invariant() {
    let (plain, sharded) = contract_pair();
    let dets: [&dyn BurstQueries; 2] = [&plain, &sharded];
    let tau = BurstSpan::new(20).unwrap();
    let requests = [
        QueryRequest::Point { event: EventId(6), t: Timestamp(329), tau },
        QueryRequest::BurstyTimes { event: EventId(6), theta: 10.0, tau, horizon: Timestamp(450) },
        QueryRequest::Series {
            event: EventId(2),
            tau,
            range: TimeRange { start: Timestamp(0), end: Timestamp(399) },
            step: 25,
        },
        QueryRequest::TopK { event: EventId(6), k: 3, tau, horizon: Timestamp(450) },
    ];
    for req in &requests {
        let a = dets[0].query(req).unwrap();
        let b = dets[1].query(req).unwrap();
        assert_eq!(a, b, "response diverged for {req:?}");
    }
    // the burst around t=300..330 must actually be visible through the trait
    let resp =
        dets[0].query(&QueryRequest::Point { event: EventId(6), t: Timestamp(329), tau }).unwrap();
    assert!(resp.burstiness().unwrap() > 50.0, "{resp:?}");

    // BurstyEvents: compare hits only (stats depend on the physical layout)
    let req = QueryRequest::BurstyEvents {
        t: Timestamp(329),
        theta: 10.0,
        tau,
        strategy: QueryStrategy::ExactScan,
    };
    let (a, b) = (dets[0].query(&req).unwrap(), dets[1].query(&req).unwrap());
    let (ha, hb) = (a.hits().unwrap(), b.hits().unwrap());
    assert_eq!(ha, hb, "hit sets diverged");
    assert!(ha.iter().any(|h| h.event == EventId(6)), "{ha:?}");

    // validation is uniform across implementors, through the same trait
    for det in dets {
        assert!(det
            .query(&QueryRequest::Point { event: EventId(8), t: Timestamp(0), tau })
            .is_err());
        assert!(det
            .query(&QueryRequest::BurstyEvents {
                t: Timestamp(0),
                theta: f64::NAN,
                tau,
                strategy: QueryStrategy::Pruned,
            })
            .is_err());
        assert!(det
            .query(&QueryRequest::Series {
                event: EventId(0),
                tau,
                range: TimeRange { start: Timestamp(5), end: Timestamp(1) },
                step: 1,
            })
            .is_err());
        assert!(det
            .query(&QueryRequest::Series {
                event: EventId(0),
                tau,
                range: TimeRange { start: Timestamp(0), end: Timestamp(10) },
                step: 0,
            })
            .is_err());
    }
}

/// The JSON rendering of a snapshot is byte-stable — goldens downstream
/// consumers (dashboards, the bench report) can rely on.
#[test]
fn metrics_snapshot_json_is_golden() {
    let h = Histogram::new();
    h.record_ns(100);
    let snap = MetricsSnapshot::from_entries([
        ("ingest.count".to_owned(), MetricValue::Counter(3)),
        ("ingest.latency_ns".to_owned(), MetricValue::Histogram(h.snapshot())),
        ("structure.bytes".to_owned(), MetricValue::Gauge(1024.5)),
    ]);
    let golden = concat!(
        "{\"ingest.count\":{\"type\":\"counter\",\"value\":3},",
        "\"ingest.latency_ns\":{\"type\":\"histogram\",\"count\":1,\"sum_ns\":100,",
        "\"buckets\":[[250,1],[1000,0],[4000,0],[16000,0],[64000,0],[250000,0],",
        "[1000000,0],[4000000,0],[16000000,0],[64000000,0],[250000000,0],",
        "[1000000000,0],[null,0]]},",
        "\"structure.bytes\":{\"type\":\"gauge\",\"value\":1024.5}}"
    );
    assert_eq!(snap.to_json(), golden);
    assert_eq!(snap.to_json(), snap.to_json(), "rendering is deterministic");
}

/// Counters only ever move forward: successive snapshots of a live detector
/// are monotone in every counter, and work done between them shows up.
#[test]
fn metric_counters_are_monotone() {
    let (plain, sharded) = contract_pair();
    let tau = BurstSpan::new(20).unwrap();
    for det in [&plain as &dyn BurstQueries, &sharded as &dyn BurstQueries] {
        let before = det.metrics();
        for _ in 0..5 {
            det.query(&QueryRequest::Point { event: EventId(1), t: Timestamp(100), tau }).unwrap();
        }
        // a failing query still counts (and increments query.errors)
        let _ = det.query(&QueryRequest::Point { event: EventId(99), t: Timestamp(0), tau });
        let after = det.metrics();
        for (name, value) in before.iter() {
            if let MetricValue::Counter(b) = value {
                let a = after.counter(name).expect("counters never disappear");
                assert!(a >= *b, "{name} went backwards: {b} -> {a}");
            }
        }
        let delta = after.counter("query.point.count").unwrap()
            - before.counter("query.point.count").unwrap();
        assert_eq!(delta, 6, "five hits + one miss");
        assert!(
            after.counter("query.errors").unwrap() > before.counter("query.errors").unwrap(),
            "the out-of-universe query must count as an error"
        );
        assert_eq!(after.counter("ingest.count"), before.counter("ingest.count"));
    }
}
