//! API-contract integration tests: error paths and misuse across the
//! public surface, plus the fused-query-kernel contract (bit-for-bit
//! equivalence with the composed estimates, and zero per-probe heap
//! allocation — this binary installs a counting global allocator).

use bed::obs::Histogram;
use bed::pbe::{CurveCursor, CurveSketch, ExactCurve, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed::sketch::CmPbe;
use bed::{
    assemble_trace_tree, AnyDetector, BedError, BurstDetector, BurstQueries, BurstSpan,
    DetectorEpochs, EventId, MetricValue, MetricsSnapshot, PbeVariant, QueryRequest, QueryScratch,
    QueryStrategy, ShardedDetector, TimeRange, Timestamp, TraceEvent, TraceId, Traceable, Tracer,
    TracerConfig,
};
use proptest::prelude::*;

#[test]
fn builder_rejects_bad_parameters() {
    assert!(BurstDetector::builder()
        .variant(PbeVariant::Pbe1 { n_buf: 10, eta: 10 })
        .build()
        .is_err());
    assert!(BurstDetector::builder()
        .variant(PbeVariant::Pbe2 { gamma: -3.0, max_vertices: 64 })
        .build()
        .is_err());
    assert!(BurstDetector::builder().universe(8).accuracy(1.5, 0.1).build().is_err());
    assert!(BurstDetector::builder().universe(8).accuracy(0.1, 0.0).build().is_err());
}

#[test]
fn mode_mismatches_are_descriptive() {
    let mut single = BurstDetector::builder().single_event().build().unwrap();
    let err = single.ingest(EventId(0), Timestamp(0)).unwrap_err();
    assert!(matches!(err, BedError::WrongMode { .. }));
    assert!(err.to_string().contains("ingest"));

    let mut mixed = BurstDetector::builder().universe(4).build().unwrap();
    let err = mixed.ingest_single(Timestamp(0)).unwrap_err();
    assert!(matches!(err, BedError::WrongMode { .. }));
}

#[test]
fn timestamps_must_not_go_backwards() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    det.ingest(EventId(1), Timestamp(100)).unwrap();
    let err = det.ingest(EventId(2), Timestamp(99)).unwrap_err();
    assert!(err.to_string().contains("non-monotonic"));
    // the failed ingest must not corrupt state: same timestamp is still fine
    det.ingest(EventId(2), Timestamp(100)).unwrap();
    assert_eq!(det.arrivals(), 2);
}

#[test]
fn universe_bounds_are_enforced() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    let err = det.ingest(EventId(4), Timestamp(0)).unwrap_err();
    assert!(err.to_string().contains("universe"));
}

#[test]
fn burst_span_construction() {
    assert!(BurstSpan::new(0).is_err());
    let tau = BurstSpan::new(60).unwrap();
    assert_eq!(tau.ticks(), 60);
}

#[test]
fn queries_on_empty_detectors_are_sane() {
    let det = BurstDetector::builder().universe(16).build().unwrap();
    let tau = BurstSpan::new(10).unwrap();
    assert_eq!(det.point_query(EventId(3), Timestamp(100), tau), 0.0);
    assert_eq!(det.cumulative_frequency(EventId(3), Timestamp(100)), 0.0);
    let (hits, _) =
        det.bursty_events_with(Timestamp(100), 1.0, tau, QueryStrategy::Pruned).unwrap();
    assert!(hits.is_empty());
    assert!(det.bursty_times(EventId(3), 1.0, tau, Timestamp(1_000)).is_empty());
    assert_eq!(det.arrivals(), 0);
}

#[test]
fn finalize_is_idempotent() {
    let mut det =
        BurstDetector::builder().universe(4).variant(PbeVariant::pbe1(8)).build().unwrap();
    for t in 0..100u64 {
        det.ingest(EventId((t % 4) as u32), Timestamp(t)).unwrap();
    }
    det.finalize();
    let size = det.size_bytes();
    let tau = BurstSpan::new(10).unwrap();
    let b = det.point_query(EventId(0), Timestamp(99), tau);
    det.finalize();
    assert_eq!(det.size_bytes(), size);
    assert_eq!(det.point_query(EventId(0), Timestamp(99), tau), b);
}

#[test]
fn ingest_after_finalize_continues_the_stream() {
    let mut det =
        BurstDetector::builder().universe(4).variant(PbeVariant::pbe2(2.0)).build().unwrap();
    for t in 0..50u64 {
        det.ingest(EventId(0), Timestamp(t)).unwrap();
    }
    det.finalize();
    for t in 50..100u64 {
        det.ingest(EventId(0), Timestamp(t)).unwrap();
    }
    det.finalize();
    let f = det.cumulative_frequency(EventId(0), Timestamp(99));
    assert!((f - 100.0).abs() <= 4.0, "F̃ = {f}");
}

#[test]
fn errors_are_std_error_and_send_sync() {
    fn assert_properties<E: std::error::Error + Send + Sync + 'static>() {}
    assert_properties::<BedError>();
    assert_properties::<bed::stream::StreamError>();
}

#[test]
fn nonpositive_theta_is_a_typed_error_not_a_panic() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    det.ingest(EventId(0), Timestamp(0)).unwrap();
    let tau = BurstSpan::new(10).unwrap();
    for theta in [0.0, -5.0, f64::NAN] {
        for strategy in [QueryStrategy::Pruned, QueryStrategy::ExactScan] {
            let err = det.bursty_events_with(Timestamp(0), theta, tau, strategy).unwrap_err();
            assert!(err.to_string().contains("theta"), "{err}");
            let err = det
                .bursty_events_in_range_with(0, 4, Timestamp(0), theta, tau, strategy)
                .unwrap_err();
            assert!(err.to_string().contains("theta"), "{err}");
        }
    }
    // inverted id range is also a typed error
    let err = det
        .bursty_events_in_range_with(3, 3, Timestamp(0), 1.0, tau, QueryStrategy::Pruned)
        .unwrap_err();
    assert!(err.to_string().contains("inverted"), "{err}");
}

/// The deprecated aliases stay pinned to their `_with` replacements.
#[test]
#[allow(deprecated)]
fn deprecated_aliases_match_their_replacements() {
    let mut det = BurstDetector::builder().universe(8).build().unwrap();
    for t in 0..200u64 {
        det.ingest(EventId((t % 3) as u32), Timestamp(t)).unwrap();
        if t >= 150 {
            for _ in 0..6 {
                det.ingest(EventId(5), Timestamp(t)).unwrap();
            }
        }
    }
    det.finalize();
    let tau = BurstSpan::new(20).unwrap();
    let t = Timestamp(199);
    assert_eq!(
        det.bursty_events(t, 2.0, tau).unwrap(),
        det.bursty_events_with(t, 2.0, tau, QueryStrategy::Pruned).unwrap()
    );
    assert_eq!(
        det.bursty_events_scan(t, 2.0, tau).unwrap(),
        det.bursty_events_with(t, 2.0, tau, QueryStrategy::ExactScan).unwrap()
    );
    assert_eq!(
        det.bursty_events_in_range(2, 7, t, 2.0, tau).unwrap(),
        det.bursty_events_in_range_with(2, 7, t, 2.0, tau, QueryStrategy::Pruned).unwrap()
    );
}

/// Builds one plain and one sharded detector over the same stream in the
/// direct-indexed (collision-free) regime, where answers match bit for bit.
fn contract_pair() -> (BurstDetector, ShardedDetector) {
    let stream: Vec<(EventId, Timestamp)> = (0..400u64)
        .flat_map(|t| {
            let mut els = vec![(EventId((t % 8) as u32), Timestamp(t))];
            if (300..330).contains(&t) {
                els.extend(std::iter::repeat_n((EventId(6), Timestamp(t)), 8));
            }
            els
        })
        .collect();
    let mut plain = BurstDetector::builder()
        .universe(8)
        .variant(PbeVariant::pbe2(1.0))
        .seed(42)
        .build()
        .unwrap();
    for &(e, t) in &stream {
        plain.ingest(e, t).unwrap();
    }
    plain.finalize();
    let mut sharded = BurstDetector::builder()
        .universe(8)
        .variant(PbeVariant::pbe2(1.0))
        .seed(42)
        .shards(3)
        .build()
        .unwrap();
    sharded.ingest_batch(&stream).unwrap();
    sharded.finalize();
    (plain, sharded)
}

/// Both detectors answer every [`QueryRequest`] variant through a
/// `&dyn BurstQueries` with equal [`QueryResponse`]s (hits-only for
/// `BurstyEvents`, whose probe statistics legitimately depend on layout).
#[test]
fn dyn_query_round_trips_are_shard_invariant() {
    let (plain, sharded) = contract_pair();
    let dets: [&dyn BurstQueries; 2] = [&plain, &sharded];
    let tau = BurstSpan::new(20).unwrap();
    let requests = [
        QueryRequest::Point { event: EventId(6), t: Timestamp(329), tau },
        QueryRequest::BurstyTimes { event: EventId(6), theta: 10.0, tau, horizon: Timestamp(450) },
        QueryRequest::Series {
            event: EventId(2),
            tau,
            range: TimeRange { start: Timestamp(0), end: Timestamp(399) },
            step: 25,
        },
        QueryRequest::TopK { event: EventId(6), k: 3, tau, horizon: Timestamp(450) },
    ];
    for req in &requests {
        let a = dets[0].query(req).unwrap();
        let b = dets[1].query(req).unwrap();
        assert_eq!(a, b, "response diverged for {req:?}");
    }
    // the burst around t=300..330 must actually be visible through the trait
    let resp =
        dets[0].query(&QueryRequest::Point { event: EventId(6), t: Timestamp(329), tau }).unwrap();
    assert!(resp.burstiness().unwrap() > 50.0, "{resp:?}");

    // BurstyEvents: compare hits only (stats depend on the physical layout)
    let req = QueryRequest::BurstyEvents {
        t: Timestamp(329),
        theta: 10.0,
        tau,
        strategy: QueryStrategy::ExactScan,
    };
    let (a, b) = (dets[0].query(&req).unwrap(), dets[1].query(&req).unwrap());
    let (ha, hb) = (a.hits().unwrap(), b.hits().unwrap());
    assert_eq!(ha, hb, "hit sets diverged");
    assert!(ha.iter().any(|h| h.event == EventId(6)), "{ha:?}");

    // validation is uniform across implementors, through the same trait
    for det in dets {
        assert!(det
            .query(&QueryRequest::Point { event: EventId(8), t: Timestamp(0), tau })
            .is_err());
        assert!(det
            .query(&QueryRequest::BurstyEvents {
                t: Timestamp(0),
                theta: f64::NAN,
                tau,
                strategy: QueryStrategy::Pruned,
            })
            .is_err());
        assert!(det
            .query(&QueryRequest::Series {
                event: EventId(0),
                tau,
                range: TimeRange { start: Timestamp(5), end: Timestamp(1) },
                step: 1,
            })
            .is_err());
        assert!(det
            .query(&QueryRequest::Series {
                event: EventId(0),
                tau,
                range: TimeRange { start: Timestamp(0), end: Timestamp(10) },
                step: 0,
            })
            .is_err());
    }
}

/// The struct-of-arrays probe bank is invisible at the query surface: a
/// finalized detector (bank built, queries ride the vectorized kernels)
/// and its codec round-trip (the `BEDD` format excludes the bank, so the
/// copy answers through the array-of-structs cells) return equal
/// [`QueryResponse`]s for every request kind — including pre-epoch
/// instants (`t < 2τ`) and ids that were never ingested (empty-cell
/// rows) — across flat PBE-1, flat PBE-2, and the dyadic hierarchy.
#[test]
fn soa_bank_is_query_invariant_across_detectors() {
    use bed::stream::Codec;
    let variants: [(PbeVariant, bool); 3] = [
        (PbeVariant::Pbe1 { n_buf: 24, eta: 8 }, false),
        (PbeVariant::pbe2(1.0), false),
        (PbeVariant::pbe2(1.0), true),
    ];
    let tau = BurstSpan::new(20).unwrap();
    for (variant, hierarchical) in variants {
        let mut banked = BurstDetector::builder()
            .universe(16)
            .variant(variant)
            .hierarchical(hierarchical)
            .seed(99)
            .build()
            .unwrap();
        // Only ids 0..8 arrive: 8..16 stay empty in every row.
        for t in 0..400u64 {
            banked.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
            if (300..330).contains(&t) {
                for _ in 0..6 {
                    banked.ingest(EventId(5), Timestamp(t)).unwrap();
                }
            }
        }
        banked.finalize();
        assert!(banked.soa_bank_bytes() > 0, "finalize must build the bank ({variant:?})");
        let plain = BurstDetector::from_bytes(&banked.to_bytes()).unwrap();
        assert_eq!(plain.soa_bank_bytes(), 0, "the codec must not persist the bank");

        let mut requests = vec![
            QueryRequest::BurstyTimes {
                event: EventId(5),
                theta: 8.0,
                tau,
                horizon: Timestamp(450),
            },
            QueryRequest::Series {
                event: EventId(5),
                tau,
                range: TimeRange { start: Timestamp(0), end: Timestamp(399) },
                step: 10,
            },
            QueryRequest::TopK { event: EventId(5), k: 4, tau, horizon: Timestamp(450) },
            QueryRequest::BurstyEvents {
                t: Timestamp(329),
                theta: 8.0,
                tau,
                strategy: QueryStrategy::ExactScan,
            },
            QueryRequest::BurstyEvents {
                t: Timestamp(329),
                theta: 8.0,
                tau,
                strategy: QueryStrategy::Pruned,
            },
        ];
        // Point probes: mid-burst, pre-epoch (t < τ and τ ≤ t < 2τ), and a
        // never-seen id hitting empty cells.
        for (e, t) in [(5u32, 329u64), (5, 10), (5, 30), (12, 329), (12, 5)] {
            requests.push(QueryRequest::Point { event: EventId(e), t: Timestamp(t), tau });
        }
        for req in &requests {
            let a = banked.query(req).unwrap();
            let b = plain.query(req).unwrap();
            assert_eq!(a, b, "bank changed the answer for {req:?} ({variant:?}, h={hierarchical})");
        }
    }
}

/// The JSON rendering of a snapshot is byte-stable — goldens downstream
/// consumers (dashboards, the bench report) can rely on.
#[test]
fn metrics_snapshot_json_is_golden() {
    let h = Histogram::new();
    h.record_ns(100);
    let snap = MetricsSnapshot::from_entries([
        ("ingest.count".to_owned(), MetricValue::Counter(3)),
        ("ingest.latency_ns".to_owned(), MetricValue::Histogram(h.snapshot())),
        ("structure.bytes".to_owned(), MetricValue::Gauge(1024.5)),
    ]);
    let golden = concat!(
        "{\"ingest.count\":{\"type\":\"counter\",\"value\":3},",
        "\"ingest.latency_ns\":{\"type\":\"histogram\",\"count\":1,\"sum_ns\":100,",
        "\"buckets\":[[250,1],[1000,0],[4000,0],[16000,0],[64000,0],[250000,0],",
        "[1000000,0],[4000000,0],[16000000,0],[64000000,0],[250000000,0],",
        "[1000000000,0],[null,0]]},",
        "\"structure.bytes\":{\"type\":\"gauge\",\"value\":1024.5}}"
    );
    assert_eq!(snap.to_json(), golden);
    assert_eq!(snap.to_json(), snap.to_json(), "rendering is deterministic");
}

/// The OpenMetrics rendering is byte-stable too — the exact text `bed
/// serve` puts on the `/metrics` wire and `bed stats --format openmetrics`
/// prints: `# HELP`/`# TYPE` framing, the `_total` counter suffix,
/// cumulative `_bucket`/`_sum`/`_count` histogram series, label extraction
/// with OpenMetrics escaping, and the `# EOF` terminator.
#[test]
fn metrics_snapshot_openmetrics_is_golden() {
    let h = Histogram::new();
    h.record_ns(100); // first bucket
    h.record_ns(2_000_000_000); // overflow bucket
    let snap = MetricsSnapshot::from_entries([
        ("ingest.count".to_owned(), MetricValue::Counter(3)),
        ("ingest.latency_ns".to_owned(), MetricValue::Histogram(h.snapshot())),
        ("shard.0.ingest.count".to_owned(), MetricValue::Counter(1)),
        ("shard.10.ingest.count".to_owned(), MetricValue::Counter(2)),
        ("structure.we\"ird\\.bytes".to_owned(), MetricValue::Gauge(1.0)),
    ]);
    let golden = concat!(
        "# HELP bed_ingest_count ingest.count\n",
        "# TYPE bed_ingest_count counter\n",
        "bed_ingest_count_total 3\n",
        "# HELP bed_ingest_latency_ns ingest.latency_ns\n",
        "# TYPE bed_ingest_latency_ns histogram\n",
        "bed_ingest_latency_ns_bucket{le=\"250\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"1000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"4000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"16000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"64000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"250000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"1000000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"4000000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"16000000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"64000000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"250000000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"1000000000\"} 1\n",
        "bed_ingest_latency_ns_bucket{le=\"+Inf\"} 2\n",
        "bed_ingest_latency_ns_sum 2000000100\n",
        "bed_ingest_latency_ns_count 2\n",
        "# HELP bed_shard_ingest_count shard.*.ingest.count\n",
        "# TYPE bed_shard_ingest_count counter\n",
        "bed_shard_ingest_count_total{shard=\"0\"} 1\n",
        "bed_shard_ingest_count_total{shard=\"10\"} 2\n",
        "# HELP bed_structure_bytes structure.*.bytes\n",
        "# TYPE bed_structure_bytes gauge\n",
        "bed_structure_bytes{layer=\"we\\\"ird\\\\\"} 1\n",
        "# EOF\n",
    );
    assert_eq!(snap.to_openmetrics(), golden);
    assert_eq!(snap.to_openmetrics(), snap.to_openmetrics(), "rendering is deterministic");
}

/// A live detector's snapshot renders as well-formed OpenMetrics: framed
/// family blocks, sample lines that belong to the preceding family, and
/// nothing after `# EOF`.
#[test]
fn live_detector_openmetrics_is_well_formed() {
    let (_, sharded) = contract_pair();
    let tau = BurstSpan::new(20).unwrap();
    sharded.query(&QueryRequest::Point { event: EventId(6), t: Timestamp(329), tau }).unwrap();
    let text = sharded.metrics().to_openmetrics();
    assert!(text.ends_with("# EOF\n"), "{text}");
    let mut current_family: Option<String> = None;
    for line in text.lines() {
        if line == "# EOF" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ").or_else(|| line.strip_prefix("# TYPE ")) {
            current_family = rest.split_whitespace().next().map(str::to_owned);
            continue;
        }
        let family = current_family.as_deref().expect("sample line before any family block");
        assert!(line.starts_with(family), "sample '{line}' does not belong to family '{family}'");
        assert!(line.rsplit(' ').next().is_some_and(|v| !v.is_empty()), "{line}");
    }
    // per-shard gauges show up as labelled series of one family
    assert!(text.contains("bed_shard_arrivals{shard=\"0\"}"), "{text}");
    assert!(text.contains("bed_shard_arrivals{shard=\"2\"}"), "{text}");
}

/// Counters only ever move forward: successive snapshots of a live detector
/// are monotone in every counter, and work done between them shows up.
#[test]
fn metric_counters_are_monotone() {
    let (plain, sharded) = contract_pair();
    let tau = BurstSpan::new(20).unwrap();
    for det in [&plain as &dyn BurstQueries, &sharded as &dyn BurstQueries] {
        let before = det.metrics();
        for _ in 0..5 {
            det.query(&QueryRequest::Point { event: EventId(1), t: Timestamp(100), tau }).unwrap();
        }
        // a failing query still counts (and increments query.errors)
        let _ = det.query(&QueryRequest::Point { event: EventId(99), t: Timestamp(0), tau });
        let after = det.metrics();
        for (name, value) in before.iter() {
            if let MetricValue::Counter(b) = value {
                let a = after.counter(name).expect("counters never disappear");
                assert!(a >= *b, "{name} went backwards: {b} -> {a}");
            }
        }
        let delta = after.counter("query.point.count").unwrap()
            - before.counter("query.point.count").unwrap();
        assert_eq!(delta, 6, "five hits + one miss");
        assert!(
            after.counter("query.errors").unwrap() > before.counter("query.errors").unwrap(),
            "the out-of-universe query must count as an error"
        );
        assert_eq!(after.counter("ingest.count"), before.counter("ingest.count"));
    }
}

// ---------------------------------------------------------------------------
// Fused query kernels: the probe3 / cursor / batched fast paths must be
// bit-for-bit interchangeable with composing three estimate_cum calls.
// ---------------------------------------------------------------------------

/// Reference for `probe3`: three independent `estimate_cum` calls with
/// pre-epoch offsets reading 0 — exactly the composition the fused kernel
/// replaces.
fn composed3<S: CurveSketch + ?Sized>(s: &S, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
    let at = |delta: u64| t.checked_sub(delta).map_or(0.0, |earlier| s.estimate_cum(earlier));
    [at(0), at(tau.ticks()), at(tau.ticks().saturating_mul(2))]
}

fn bits3(v: [f64; 3]) -> [u64; 3] {
    [v[0].to_bits(), v[1].to_bits(), v[2].to_bits()]
}

/// Drives every kernel entry point of one sketch against the composed
/// reference: stateless `probe3`, `estimate_burstiness`, a cursor fed the
/// probes in the given (arbitrary) order, and a second cursor on the sorted
/// (monotone, hint-friendly) order. Probe times include pre-epoch `t < 2τ`
/// whenever the generated `qs` contain small ticks.
fn assert_fused_matches_composed<S: CurveSketch>(sketch: &S, qs: &[u64], tau: BurstSpan) {
    let mut cursor = CurveCursor::new(sketch);
    for &q in qs {
        let t = Timestamp(q);
        let want = composed3(sketch, t, tau);
        assert_eq!(bits3(sketch.probe3(t, tau)), bits3(want), "probe3 diverged at t={q}");
        assert_eq!(bits3(cursor.probe3(t, tau)), bits3(want), "cursor diverged at t={q}");
        let b = want[0] - 2.0 * want[1] + want[2];
        assert_eq!(sketch.estimate_burstiness(t, tau).to_bits(), b.to_bits());
    }
    let mut sorted: Vec<u64> = qs.to_vec();
    sorted.sort_unstable();
    let mut cursor = CurveCursor::new(sketch);
    for &q in &sorted {
        let t = Timestamp(q);
        let want = composed3(sketch, t, tau);
        assert_eq!(bits3(cursor.probe3(t, tau)), bits3(want), "monotone cursor at t={q}");
        assert_eq!(
            cursor.burstiness(t, tau).to_bits(),
            sketch.estimate_burstiness(t, tau).to_bits()
        );
    }
}

fn arb_ticks() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..2_000, 1..250).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

fn arb_probes() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..3_000, 1..40)
}

proptest! {
    /// PBE-1: fused kernels equal the composed estimates bit for bit, both
    /// mid-stream (live buffer) and after finalize.
    #[test]
    fn pbe1_fused_kernel_matches_composed(
        ticks in arb_ticks(),
        qs in arb_probes(),
        tau in 1u64..500,
        fin in 0u8..2,
    ) {
        let mut p = Pbe1::new(Pbe1Config { n_buf: 64, eta: 8 }).unwrap();
        for &t in &ticks {
            p.update(Timestamp(t));
        }
        if fin == 1 {
            p.finalize();
        }
        assert_fused_matches_composed(&p, &qs, BurstSpan::new(tau).unwrap());
    }

    /// PBE-2: same contract, covering the open PLA segment and the
    /// pending-first-arrival state.
    #[test]
    fn pbe2_fused_kernel_matches_composed(
        ticks in arb_ticks(),
        qs in arb_probes(),
        tau in 1u64..500,
        fin in 0u8..2,
    ) {
        let mut p = Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap();
        for &t in &ticks {
            p.update(Timestamp(t));
        }
        if fin == 1 {
            p.finalize();
        }
        assert_fused_matches_composed(&p, &qs, BurstSpan::new(tau).unwrap());
    }

    /// Exact curves: the kernel contract holds for the lossless summary too.
    #[test]
    fn exact_curve_fused_kernel_matches_composed(
        ticks in arb_ticks(),
        qs in arb_probes(),
        tau in 1u64..500,
    ) {
        let mut c = ExactCurve::new();
        for &t in &ticks {
            c.update(Timestamp(t));
        }
        assert_fused_matches_composed(&c, &qs, BurstSpan::new(tau).unwrap());
    }

    /// CM-PBE: the per-event fused probe, the batched row-major scan, and
    /// the hinted bursty-time sweep all equal the composed median estimates
    /// bit for bit (pre-epoch `t < 2τ` included whenever `q < 2τ`).
    #[test]
    fn cmpbe_fused_kernels_match_composed(
        els in prop::collection::vec((0u32..32, 0u64..1_000), 1..300),
        seed in 0u64..50,
        q in 0u64..2_500,
        tau in 1u64..400,
        theta in -50.0f64..50.0,
    ) {
        let mut els = els;
        els.sort_by_key(|&(_, t)| t);
        let mut cm = CmPbe::with_dimensions(3, 4, seed, || {
            Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap()
        });
        for &(e, t) in &els {
            cm.update(EventId(e), Timestamp(t));
        }
        cm.finalize();
        let tau = BurstSpan::new(tau).unwrap();
        let t = Timestamp(q);

        for e in 0..32u32 {
            let e = EventId(e);
            let want = [
                cm.estimate_cum(e, t),
                cm.estimate_cum_offset(e, t, tau.ticks()),
                cm.estimate_cum_offset(e, t, tau.ticks().saturating_mul(2)),
            ];
            prop_assert_eq!(bits3(cm.probe3(e, t, tau)), bits3(want));
            let b = want[0] - 2.0 * want[1] + want[2];
            prop_assert_eq!(cm.estimate_burstiness(e, t, tau).to_bits(), b.to_bits());
        }

        // batched row-major scan == per-event estimates, in id order
        let mut scratch = QueryScratch::new();
        let mut got: Vec<(EventId, f64)> = Vec::new();
        cm.burstiness_scan_into(0, 32, t, tau, &mut scratch, |e, b| got.push((e, b)));
        prop_assert_eq!(got.len(), 32);
        for (i, &(e, b)) in got.iter().enumerate() {
            prop_assert_eq!(e, EventId(i as u32));
            prop_assert_eq!(b.to_bits(), cm.estimate_burstiness(e, t, tau).to_bits());
        }

        // hinted bursty-time sweep == candidate filter over estimate_burstiness
        let horizon = Timestamp(2_000);
        for e in [EventId(0), EventId(7), EventId(31)] {
            let mut want: Vec<(Timestamp, f64)> = Vec::new();
            let mut cands: Vec<u64> = Vec::new();
            for knee in cm.segment_starts(e) {
                for delta in [0, tau.ticks(), tau.ticks().saturating_mul(2)] {
                    let c = knee.ticks().saturating_add(delta);
                    if c <= horizon.ticks() {
                        cands.push(c);
                    }
                }
            }
            cands.sort_unstable();
            cands.dedup();
            for c in cands {
                let b = cm.estimate_burstiness(e, Timestamp(c), tau);
                if b >= theta {
                    want.push((Timestamp(c), b));
                }
            }
            let mut out: Vec<(Timestamp, f64)> = Vec::new();
            cm.bursty_times_into(e, theta, tau, horizon, &mut scratch, &mut out);
            prop_assert_eq!(out.len(), want.len());
            for (g, w) in out.iter().zip(&want) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Zero-allocation contract: after scratch warm-up, the fused kernels never
// touch the heap. A counting global allocator makes the claim checkable.
// ---------------------------------------------------------------------------

mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// System allocator wrapper counting allocation events per thread
    /// (`dealloc` is free to run — dropping warm buffers is not a probe
    /// cost, and other test threads never perturb this thread's count).
    pub struct CountingAlloc;

    impl CountingAlloc {
        fn bump() {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        }

        pub fn current() -> u64 {
            ALLOCATIONS.with(Cell::get)
        }
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            Self::bump();
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            Self::bump();
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            Self::bump();
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

/// The tentpole's zero-allocation claim, enforced: once the scratch buffers
/// have grown to their high-water mark, probe3, the cursor sweep, the
/// batched bursty-event scan, and the hinted bursty-time sweep perform no
/// heap allocation at all.
#[test]
fn warm_fused_kernels_do_not_allocate() {
    const K: u32 = 64;
    let mut cm = CmPbe::with_dimensions(4, 16, 9, || {
        Pbe2::new(Pbe2Config { gamma: 1.0, max_vertices: 16 }).unwrap()
    });
    for t in 0..4_000u64 {
        cm.update(EventId((t % K as u64) as u32), Timestamp(t));
        if (3_000..3_200).contains(&t) {
            for _ in 0..4 {
                cm.update(EventId(11), Timestamp(t));
            }
        }
    }
    cm.finalize();
    assert!(cm.has_bank(), "finalize must build the SoA bank");
    // A bank-free twin: the array-of-structs fallback must stay
    // allocation-free too, so both layouts are measured below.
    let mut aos = cm.clone();
    aos.clear_bank();
    let tau = BurstSpan::new(200).unwrap();
    let t = Timestamp(3_199);
    let horizon = Timestamp(4_500);

    // Warm-up: grow every scratch buffer to its high-water mark.
    let mut scratch = QueryScratch::new();
    let mut hits = 0u32;
    cm.burstiness_scan_into(0, K, t, tau, &mut scratch, |_, _| hits += 1);
    let mut out: Vec<(Timestamp, f64)> = Vec::new();
    cm.bursty_times_into(EventId(11), -1e18, tau, horizon, &mut scratch, &mut out);
    let warm_times = out.len();
    assert!(warm_times > 0, "warm-up sweep must visit candidates");

    // A standalone PBE-2 for the cursor sweep, built before measuring.
    let mut single = Pbe2::new(Pbe2Config { gamma: 1.0, max_vertices: 16 }).unwrap();
    for t in 0..2_000u64 {
        single.update(Timestamp(t));
    }
    single.finalize();

    let base = counting_alloc::CountingAlloc::current();

    for q in 3_000..3_199u64 {
        std::hint::black_box(cm.probe3(EventId(11), Timestamp(q), tau));
        std::hint::black_box(cm.estimate_burstiness(EventId(3), Timestamp(q), tau));
        std::hint::black_box(aos.probe3(EventId(11), Timestamp(q), tau));
    }
    for q in [3_000u64, 3_050, 3_100, 3_199] {
        cm.burstiness_scan_into(0, K, Timestamp(q), tau, &mut scratch, |_, b| {
            std::hint::black_box(b);
        });
    }
    cm.bursty_times_into(EventId(11), -1e18, tau, horizon, &mut scratch, &mut out);
    assert_eq!(out.len(), warm_times);
    let mut cursor = CurveCursor::new(&single);
    for q in (0..2_000u64).step_by(7) {
        std::hint::black_box(cursor.burstiness(Timestamp(q), tau));
    }

    let delta = counting_alloc::CountingAlloc::current() - base;
    assert_eq!(delta, 0, "warm fused kernels allocated {delta} times");
}

// ---------------------------------------------------------------------------
// Epoch publication contract: the `epoch.*` metric families are stable wire
// text, and the concurrent read path inherits the zero-allocation guarantee.
// ---------------------------------------------------------------------------

/// The `epoch.*` family names on the `/metrics` wire are golden — exact
/// bytes for a deterministic snapshot, so dashboards can rely on
/// `bed_epoch_published_total`, `bed_epoch_reader_retries_total`,
/// `bed_epoch_publish_latency_ns_*`, and the `bed_epoch_generation` gauge.
#[test]
fn epoch_metrics_openmetrics_is_golden() {
    let h = Histogram::new();
    h.record_ns(100);
    let snap = MetricsSnapshot::from_entries([
        ("epoch.published".to_owned(), MetricValue::Counter(2)),
        ("epoch.reader_retries".to_owned(), MetricValue::Counter(0)),
        ("epoch.generation".to_owned(), MetricValue::Gauge(2.0)),
        ("epoch.publish.latency_ns".to_owned(), MetricValue::Histogram(h.snapshot())),
    ]);
    let golden = concat!(
        "# HELP bed_epoch_generation epoch.generation\n",
        "# TYPE bed_epoch_generation gauge\n",
        "bed_epoch_generation 2\n",
        "# HELP bed_epoch_publish_latency_ns epoch.publish.latency_ns\n",
        "# TYPE bed_epoch_publish_latency_ns histogram\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"250\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"1000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"4000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"16000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"64000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"250000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"1000000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"4000000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"16000000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"64000000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"250000000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"1000000000\"} 1\n",
        "bed_epoch_publish_latency_ns_bucket{le=\"+Inf\"} 1\n",
        "bed_epoch_publish_latency_ns_sum 100\n",
        "bed_epoch_publish_latency_ns_count 1\n",
        "# HELP bed_epoch_published epoch.published\n",
        "# TYPE bed_epoch_published counter\n",
        "bed_epoch_published_total 2\n",
        "# HELP bed_epoch_reader_retries epoch.reader_retries\n",
        "# TYPE bed_epoch_reader_retries counter\n",
        "bed_epoch_reader_retries_total 0\n",
        "# EOF\n",
    );
    assert_eq!(snap.to_openmetrics(), golden);

    // A live `DetectorEpochs` emits exactly those families (latency values
    // are wall-clock, so the histogram series are asserted by name only).
    let det =
        AnyDetector::Plain(Box::new(BurstDetector::builder().universe(8).seed(7).build().unwrap()));
    let epochs = DetectorEpochs::new(&det); // genesis publish = generation 1
    epochs.publish(&det);
    let om = epochs.metrics().to_openmetrics();
    assert!(om.contains("bed_epoch_published_total 2\n"), "{om}");
    assert!(om.contains("bed_epoch_reader_retries_total 0\n"), "{om}");
    assert!(om.contains("bed_epoch_generation 2\n"), "{om}");
    assert!(om.contains("# TYPE bed_epoch_publish_latency_ns histogram\n"), "{om}");
    assert!(om.contains("bed_epoch_publish_latency_ns_count 2\n"), "{om}");
    assert!(om.ends_with("# EOF\n"), "{om}");
}

/// The epoch read path stays zero-allocation once warm: the fast path
/// (generation unchanged — one atomic load) and the slow path (a new epoch
/// was published — the reader copies an `Arc` handle out of a slot) both
/// answer point queries without touching the heap.
#[test]
fn warm_epoch_read_path_does_not_allocate() {
    let mut det = AnyDetector::Plain(Box::new(
        BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .seed(7)
            .build()
            .unwrap(),
    ));
    for t in 0..2_000u64 {
        det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
        if t >= 1_900 {
            for _ in 0..4 {
                det.ingest(EventId(2), Timestamp(t)).unwrap();
            }
        }
    }
    let epochs = DetectorEpochs::new(&det);
    let tau = BurstSpan::new(50).unwrap();

    // Warm-up: pull the genesis epoch through the view and grow its
    // scratch to the high-water mark of every kind we will measure.
    let view = epochs.view();
    view.refresh_latest();
    for e in 0..8u32 {
        view.query(&QueryRequest::Point { event: EventId(e), t: Timestamp(1_999), tau }).unwrap();
    }

    // Ingest more and publish generation 2 *before* measuring: publishing
    // clones the detector (writer-side cost, heap allowed); consuming the
    // publish on the read side must be free.
    for t in 2_000..2_500u64 {
        det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
    }
    epochs.publish(&det);
    // Publishing finalizes the snapshot, which builds the SoA probe bank:
    // every measured point query below rides the batched `probe3_rows`
    // kernel through the epoch reader.
    assert!(epochs.bank_bytes() > 0, "published epochs must carry the SoA bank");

    let base = counting_alloc::CountingAlloc::current();

    // Slow path: the refresh sees generation 2 and swaps in the new epoch.
    assert_eq!(view.refresh_latest().arrivals, 2_900);
    assert_eq!(view.answer_generation(), 2);
    // Fast path: repeated refreshes and point queries against a quiet cell.
    for round in 0..200u64 {
        view.refresh_latest();
        for e in 0..8u32 {
            let req = QueryRequest::Point { event: EventId(e), t: Timestamp(2_000 + round), tau };
            std::hint::black_box(view.query(&req).unwrap());
        }
    }

    let delta = counting_alloc::CountingAlloc::current() - base;
    assert_eq!(delta, 0, "warm epoch read path allocated {delta} times");
}

// ---------------------------------------------------------------------------
// Observability contract: trace-id propagation stays free when the sampler
// skips, exemplars and tracer self-health are stable wire text, and trace
// trees assemble deterministically.
// ---------------------------------------------------------------------------

/// The `/query` hot path with tracing *enabled but unsampled* — a trace id
/// stamped into the scratch, explain off, sampler skipping — stays
/// zero-allocation. This is exactly the serve configuration under load:
/// every response carries a joinable id, yet an unsampled request pays one
/// relaxed `fetch_add` and never touches the heap.
#[test]
fn traced_unsampled_epoch_read_path_does_not_allocate() {
    let tracer = std::sync::Arc::new(Tracer::new(TracerConfig {
        sample_every: u64::MAX,      // enabled, but effectively never samples…
        slow_threshold_ns: u64::MAX, // …and never captures slow queries
        buffer_capacity: 64,
        slow_capacity: 1,
        dump_slow_on_drop: false,
    }));
    let mut det = AnyDetector::Plain(Box::new(
        BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .seed(7)
            .build()
            .unwrap(),
    ));
    det.set_tracer(std::sync::Arc::clone(&tracer));
    for t in 0..2_000u64 {
        det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
    }
    let mut epochs = DetectorEpochs::new(&det);
    epochs.set_tracer(std::sync::Arc::clone(&tracer));
    let tau = BurstSpan::new(50).unwrap();

    // Warm-up grows the scratch AND burns sampler ticket 0 (the first
    // ticket matches any period, so the very first query is the one
    // sampled request this test ever records).
    let view = epochs.view();
    view.refresh_latest();
    let mut scratch = QueryScratch::new();
    for e in 0..8u32 {
        let req = QueryRequest::Point { event: EventId(e), t: Timestamp(1_999), tau };
        view.query_reusing(&req, &mut scratch).unwrap();
    }
    assert_eq!(tracer.metrics_snapshot().counter("trace.sampled"), Some(1));

    let base = counting_alloc::CountingAlloc::current();
    for round in 0..200u64 {
        // Serve stamps a fresh minted id per request: id arithmetic only.
        scratch.trace_id = tracer.next_trace_id().0;
        scratch.explain = false;
        for e in 0..8u32 {
            let req = QueryRequest::Point { event: EventId(e), t: Timestamp(1_000 + round), tau };
            std::hint::black_box(view.query_reusing(&req, &mut scratch).unwrap());
        }
    }
    let delta = counting_alloc::CountingAlloc::current() - base;
    assert_eq!(delta, 0, "traced-unsampled query path allocated {delta} times");

    // Nothing beyond the warm-up query ever reached the ring.
    assert_eq!(tracer.metrics_snapshot().counter("trace.sampled"), Some(1));
}

/// OpenMetrics exemplars on the wire are golden: a bucket that received a
/// traced observation grows ` # {trace_id="..."} <ns>`, and every other
/// bucket renders byte-identically to the pre-exemplar format.
#[test]
fn latency_exemplars_openmetrics_is_golden() {
    let h = Histogram::new();
    h.record_ns(100); // untraced: its bucket stays exemplar-free
    h.record_ns_exemplar(5_000, 0xabc);
    let snap = MetricsSnapshot::from_entries([(
        "query.point.latency_ns".to_owned(),
        MetricValue::Histogram(h.snapshot()),
    )]);
    let golden = concat!(
        "# HELP bed_query_point_latency_ns query.point.latency_ns\n",
        "# TYPE bed_query_point_latency_ns histogram\n",
        "bed_query_point_latency_ns_bucket{le=\"250\"} 1\n",
        "bed_query_point_latency_ns_bucket{le=\"1000\"} 1\n",
        "bed_query_point_latency_ns_bucket{le=\"4000\"} 1\n",
        "bed_query_point_latency_ns_bucket{le=\"16000\"} 2",
        " # {trace_id=\"0000000000000abc\"} 5000\n",
        "bed_query_point_latency_ns_bucket{le=\"64000\"} 2\n",
        "bed_query_point_latency_ns_bucket{le=\"250000\"} 2\n",
        "bed_query_point_latency_ns_bucket{le=\"1000000\"} 2\n",
        "bed_query_point_latency_ns_bucket{le=\"4000000\"} 2\n",
        "bed_query_point_latency_ns_bucket{le=\"16000000\"} 2\n",
        "bed_query_point_latency_ns_bucket{le=\"64000000\"} 2\n",
        "bed_query_point_latency_ns_bucket{le=\"250000000\"} 2\n",
        "bed_query_point_latency_ns_bucket{le=\"1000000000\"} 2\n",
        "bed_query_point_latency_ns_bucket{le=\"+Inf\"} 2\n",
        "bed_query_point_latency_ns_sum 5100\n",
        "bed_query_point_latency_ns_count 2\n",
        "# EOF\n",
    );
    assert_eq!(snap.to_openmetrics(), golden);
}

/// Tracer self-health on `/metrics` is golden wire text: a tracer driven
/// through a deterministic schedule (1-in-2 sampling, six tickets) renders
/// exact dropped/lap/ticket/occupancy families.
#[test]
fn tracer_self_health_openmetrics_is_golden() {
    let tracer = Tracer::new(TracerConfig {
        sample_every: 2,
        slow_threshold_ns: u64::MAX,
        buffer_capacity: 4,
        slow_capacity: 8,
        dump_slow_on_drop: false,
    });
    for _ in 0..6 {
        if let Some(span) = tracer.start_sampled(bed::SpanName::QUERY_POINT) {
            span.finish(String::new);
        }
    }
    let golden = concat!(
        "# HELP bed_trace_buffer_capacity trace.buffer.capacity\n",
        "# TYPE bed_trace_buffer_capacity gauge\n",
        "bed_trace_buffer_capacity 4\n",
        "# HELP bed_trace_buffer_laps trace.buffer.laps\n",
        "# TYPE bed_trace_buffer_laps gauge\n",
        "bed_trace_buffer_laps 0\n",
        "# HELP bed_trace_dropped trace.dropped\n",
        "# TYPE bed_trace_dropped counter\n",
        "bed_trace_dropped_total 0\n",
        "# HELP bed_trace_sample_every trace.sample_every\n",
        "# TYPE bed_trace_sample_every gauge\n",
        "bed_trace_sample_every 2\n",
        "# HELP bed_trace_sampled trace.sampled\n",
        "# TYPE bed_trace_sampled counter\n",
        "bed_trace_sampled_total 3\n",
        "# HELP bed_trace_sampler_tickets trace.sampler.tickets\n",
        "# TYPE bed_trace_sampler_tickets counter\n",
        "bed_trace_sampler_tickets_total 6\n",
        "# HELP bed_trace_slow_count trace.slow.count\n",
        "# TYPE bed_trace_slow_count counter\n",
        "bed_trace_slow_count_total 0\n",
        "# HELP bed_trace_slow_occupancy trace.slow.occupancy\n",
        "# TYPE bed_trace_slow_occupancy gauge\n",
        "bed_trace_slow_occupancy 0\n",
        "# HELP bed_trace_spans trace.spans\n",
        "# TYPE bed_trace_spans counter\n",
        "bed_trace_spans_total 3\n",
        "# EOF\n",
    );
    assert_eq!(tracer.metrics_snapshot().to_openmetrics(), golden);
}

/// `/trace/<id>` tree assembly is golden for hand-built deterministic
/// events: spans of other traces are filtered, children nest under their
/// parent, and a span whose parent was overwritten in the ring surfaces
/// under `"orphans"` instead of vanishing.
#[test]
fn trace_tree_assembly_is_golden() {
    let ev = |name, trace_id, span_id, parent_id, start_ns, dur_ns| TraceEvent {
        name,
        trace_id,
        span_id,
        parent_id,
        start_ns,
        dur_ns,
    };
    let events = vec![
        ev("query.point", 0xabc, 0x1, 0x0, 10, 900),
        ev("stage.cell_probe", 0xabc, 0x2, 0x1, 20, 300),
        ev("stage.median_combine", 0xabc, 0x3, 0x1, 350, 200),
        ev("query.point", 0xddd, 0x9, 0x0, 0, 50), // different trace: filtered
        ev("stage.hierarchy_prune", 0xabc, 0x4, 0x77, 600, 100), // parent lost
    ];
    let golden = concat!(
        "{\"trace_id\":\"0000000000000abc\",\"roots\":[",
        "{\"name\":\"query.point\",\"span_id\":\"0000000000000001\",",
        "\"start_ns\":10,\"dur_ns\":900,\"children\":[",
        "{\"name\":\"stage.cell_probe\",\"span_id\":\"0000000000000002\",",
        "\"start_ns\":20,\"dur_ns\":300,\"children\":[]},",
        "{\"name\":\"stage.median_combine\",\"span_id\":\"0000000000000003\",",
        "\"start_ns\":350,\"dur_ns\":200,\"children\":[]}]}],",
        "\"orphans\":[",
        "{\"name\":\"stage.hierarchy_prune\",\"trace_id\":\"0000000000000abc\",",
        "\"span_id\":\"0000000000000004\",\"parent_id\":\"0000000000000077\",",
        "\"start_ns\":600,\"dur_ns\":100}]}",
    );
    assert_eq!(assemble_trace_tree(&events, TraceId(0xabc)).as_deref(), Some(golden));
    assert_eq!(assemble_trace_tree(&events, TraceId(0xbeef)), None);
}
