//! API-contract integration tests: error paths and misuse across the
//! public surface.

use bed::{BedError, BurstDetector, BurstSpan, EventId, PbeVariant, Timestamp};

#[test]
fn builder_rejects_bad_parameters() {
    assert!(BurstDetector::builder()
        .variant(PbeVariant::Pbe1 { n_buf: 10, eta: 10 })
        .build()
        .is_err());
    assert!(BurstDetector::builder()
        .variant(PbeVariant::Pbe2 { gamma: -3.0, max_vertices: 64 })
        .build()
        .is_err());
    assert!(BurstDetector::builder().universe(8).accuracy(1.5, 0.1).build().is_err());
    assert!(BurstDetector::builder().universe(8).accuracy(0.1, 0.0).build().is_err());
}

#[test]
fn mode_mismatches_are_descriptive() {
    let mut single = BurstDetector::builder().single_event().build().unwrap();
    let err = single.ingest(EventId(0), Timestamp(0)).unwrap_err();
    assert!(matches!(err, BedError::WrongMode { .. }));
    assert!(err.to_string().contains("ingest"));

    let mut mixed = BurstDetector::builder().universe(4).build().unwrap();
    let err = mixed.ingest_single(Timestamp(0)).unwrap_err();
    assert!(matches!(err, BedError::WrongMode { .. }));
}

#[test]
fn timestamps_must_not_go_backwards() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    det.ingest(EventId(1), Timestamp(100)).unwrap();
    let err = det.ingest(EventId(2), Timestamp(99)).unwrap_err();
    assert!(err.to_string().contains("non-monotonic"));
    // the failed ingest must not corrupt state: same timestamp is still fine
    det.ingest(EventId(2), Timestamp(100)).unwrap();
    assert_eq!(det.arrivals(), 2);
}

#[test]
fn universe_bounds_are_enforced() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    let err = det.ingest(EventId(4), Timestamp(0)).unwrap_err();
    assert!(err.to_string().contains("universe"));
}

#[test]
fn burst_span_construction() {
    assert!(BurstSpan::new(0).is_err());
    let tau = BurstSpan::new(60).unwrap();
    assert_eq!(tau.ticks(), 60);
}

#[test]
fn queries_on_empty_detectors_are_sane() {
    let det = BurstDetector::builder().universe(16).build().unwrap();
    let tau = BurstSpan::new(10).unwrap();
    assert_eq!(det.point_query(EventId(3), Timestamp(100), tau), 0.0);
    assert_eq!(det.cumulative_frequency(EventId(3), Timestamp(100)), 0.0);
    let (hits, _) = det.bursty_events(Timestamp(100), 1.0, tau).unwrap();
    assert!(hits.is_empty());
    assert!(det.bursty_times(EventId(3), 1.0, tau, Timestamp(1_000)).is_empty());
    assert_eq!(det.arrivals(), 0);
}

#[test]
fn finalize_is_idempotent() {
    let mut det =
        BurstDetector::builder().universe(4).variant(PbeVariant::pbe1(8)).build().unwrap();
    for t in 0..100u64 {
        det.ingest(EventId((t % 4) as u32), Timestamp(t)).unwrap();
    }
    det.finalize();
    let size = det.size_bytes();
    let tau = BurstSpan::new(10).unwrap();
    let b = det.point_query(EventId(0), Timestamp(99), tau);
    det.finalize();
    assert_eq!(det.size_bytes(), size);
    assert_eq!(det.point_query(EventId(0), Timestamp(99), tau), b);
}

#[test]
fn ingest_after_finalize_continues_the_stream() {
    let mut det =
        BurstDetector::builder().universe(4).variant(PbeVariant::pbe2(2.0)).build().unwrap();
    for t in 0..50u64 {
        det.ingest(EventId(0), Timestamp(t)).unwrap();
    }
    det.finalize();
    for t in 50..100u64 {
        det.ingest(EventId(0), Timestamp(t)).unwrap();
    }
    det.finalize();
    let f = det.cumulative_frequency(EventId(0), Timestamp(99));
    assert!((f - 100.0).abs() <= 4.0, "F̃ = {f}");
}

#[test]
fn errors_are_std_error_and_send_sync() {
    fn assert_properties<E: std::error::Error + Send + Sync + 'static>() {}
    assert_properties::<BedError>();
    assert_properties::<bed::stream::StreamError>();
}

#[test]
fn nonpositive_theta_is_a_typed_error_not_a_panic() {
    let mut det = BurstDetector::builder().universe(4).build().unwrap();
    det.ingest(EventId(0), Timestamp(0)).unwrap();
    let tau = BurstSpan::new(10).unwrap();
    for theta in [0.0, -5.0, f64::NAN] {
        let err = det.bursty_events(Timestamp(0), theta, tau).unwrap_err();
        assert!(err.to_string().contains("theta"), "{err}");
        let err = det.bursty_events_in_range(0, 4, Timestamp(0), theta, tau).unwrap_err();
        assert!(err.to_string().contains("theta"), "{err}");
    }
    // inverted id range is also a typed error
    let err = det.bursty_events_in_range(3, 3, Timestamp(0), 1.0, tau).unwrap_err();
    assert!(err.to_string().contains("inverted"), "{err}");
}
