//! Persistence integration tests: every summary type round-trips through its
//! binary encoding, decoded sketches keep answering (and ingesting), and
//! corrupted inputs fail loudly instead of producing wrong answers.

use bed::pbe::{CurveSketch, ExactCurve, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed::sketch::{CmPbe, SketchParams};
use bed::stream::{Codec, CodecError};
use bed::{BurstDetector, BurstSpan, EventId, PbeVariant, Timestamp};

fn spiky(n: u64) -> Vec<u64> {
    let mut ts: Vec<u64> = (0..n).map(|i| i * 3 + (i % 7)).collect();
    for t in 100..160 {
        for _ in 0..5 {
            ts.push(t);
        }
    }
    ts.sort_unstable();
    ts
}

#[test]
fn pbe1_roundtrip_mid_stream_and_finalized() {
    let ts = spiky(2_000);
    let mut p = Pbe1::new(Pbe1Config { n_buf: 300, eta: 24 }).unwrap();
    for &t in &ts {
        p.update(Timestamp(t));
    }
    // mid-stream: live buffer present
    let bytes = p.to_bytes();
    let decoded = Pbe1::from_bytes(&bytes).unwrap();
    for t in (0..6_200u64).step_by(97) {
        assert_eq!(p.estimate_cum(Timestamp(t)), decoded.estimate_cum(Timestamp(t)), "t={t}");
    }
    assert_eq!(p.arrivals(), decoded.arrivals());
    assert_eq!(p.size_bytes(), decoded.size_bytes());
    assert_eq!(p.accumulated_area_error(), decoded.accumulated_area_error());

    // the decoded sketch keeps ingesting identically
    let mut a = p.clone();
    let mut b = decoded;
    for t in 6_200..6_400u64 {
        a.update(Timestamp(t));
        b.update(Timestamp(t));
    }
    a.finalize();
    b.finalize();
    for t in (0..6_400u64).step_by(41) {
        assert_eq!(a.estimate_cum(Timestamp(t)), b.estimate_cum(Timestamp(t)));
    }
}

#[test]
fn pbe2_roundtrip_preserves_open_polygon() {
    let ts = spiky(3_000);
    let mut p = Pbe2::new(Pbe2Config { gamma: 3.0, max_vertices: 48 }).unwrap();
    for &t in &ts {
        p.update(Timestamp(t));
    }
    let decoded = Pbe2::from_bytes(&p.to_bytes()).unwrap();
    assert_eq!(p.segments(), decoded.segments());
    assert_eq!(p.arrivals(), decoded.arrivals());
    assert_eq!(p.cap_cuts(), decoded.cap_cuts());
    for t in (0..10_000u64).step_by(173) {
        assert_eq!(p.estimate_cum(Timestamp(t)), decoded.estimate_cum(Timestamp(t)), "t={t}");
    }
    // continue both and verify identical segment structure afterwards
    let mut a = p;
    let mut b = decoded;
    for t in 10_000..10_400u64 {
        a.update(Timestamp(t));
        b.update(Timestamp(t));
    }
    a.finalize();
    b.finalize();
    assert_eq!(a.segments(), b.segments());
}

#[test]
fn exact_curve_roundtrip() {
    let mut e = ExactCurve::new();
    for &t in &spiky(500) {
        e.update(Timestamp(t));
    }
    let decoded = ExactCurve::from_bytes(&e.to_bytes()).unwrap();
    assert_eq!(e.curve(), decoded.curve());
    assert_eq!(e.arrivals(), decoded.arrivals());
}

#[test]
fn cmpbe_roundtrip_generic_over_cells() {
    let mut cm = CmPbe::new(SketchParams { epsilon: 0.02, delta: 0.1 }, 9, || {
        Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 32 }).unwrap()
    })
    .unwrap();
    for i in 0..5_000u64 {
        cm.update(EventId((i % 50) as u32), Timestamp(i / 5));
    }
    cm.finalize();
    let decoded: CmPbe<Pbe2> = CmPbe::from_bytes(&cm.to_bytes()).unwrap();
    let tau = BurstSpan::new(100).unwrap();
    for e in 0..50u32 {
        assert_eq!(
            cm.estimate_burstiness(EventId(e), Timestamp(900), tau),
            decoded.estimate_burstiness(EventId(e), Timestamp(900), tau)
        );
    }
    assert_eq!(cm.size_bytes(), decoded.size_bytes());
}

#[test]
fn detector_roundtrip_all_backends() {
    let tau = BurstSpan::new(50).unwrap();
    let configs = [
        BurstDetector::builder().single_event().variant(PbeVariant::pbe2(2.0)),
        BurstDetector::builder().universe(32).hierarchical(false).variant(PbeVariant::pbe1(16)),
        BurstDetector::builder().universe(32).hierarchical(true).variant(PbeVariant::pbe2(2.0)),
    ];
    for builder in configs {
        let mut det = builder.build().unwrap();
        let single = det.config().universe.is_none();
        for t in 0..2_000u64 {
            if single {
                det.ingest_single(Timestamp(t)).unwrap();
            } else {
                det.ingest(EventId((t % 32) as u32), Timestamp(t)).unwrap();
                if t >= 1_900 {
                    for _ in 0..4 {
                        det.ingest(EventId(7), Timestamp(t)).unwrap();
                    }
                }
            }
        }
        det.finalize();
        let bytes = det.to_bytes();
        let decoded = BurstDetector::from_bytes(&bytes).unwrap();
        assert_eq!(det.arrivals(), decoded.arrivals());
        assert_eq!(det.size_bytes(), decoded.size_bytes());
        for t in (0..2_100u64).step_by(111) {
            for e in [0u32, 7, 31] {
                assert_eq!(
                    det.point_query(EventId(e), Timestamp(t), tau),
                    decoded.point_query(EventId(e), Timestamp(t), tau),
                    "t={t} e={e}"
                );
            }
        }
        if !single {
            let strat = bed::QueryStrategy::Pruned;
            let (h1, _) = det.bursty_events_with(Timestamp(1_999), 10.0, tau, strat).unwrap();
            let (h2, _) = decoded.bursty_events_with(Timestamp(1_999), 10.0, tau, strat).unwrap();
            assert_eq!(h1, h2);
        }
    }
}

#[test]
fn corrupted_inputs_are_rejected_never_panic() {
    let mut det =
        BurstDetector::builder().universe(16).variant(PbeVariant::pbe2(2.0)).build().unwrap();
    for t in 0..500u64 {
        det.ingest(EventId((t % 16) as u32), Timestamp(t)).unwrap();
    }
    det.finalize();
    let bytes = det.to_bytes();

    // truncations at every prefix length must decode to Err, not panic
    for cut in 0..bytes.len().min(200) {
        assert!(BurstDetector::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
    }
    // a sample of deeper truncations
    for cut in (200..bytes.len()).step_by(997) {
        assert!(BurstDetector::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
    }

    // single-byte corruptions: either a clean error or a successful decode
    // (bytes in f64 payloads can change values without breaking framing) —
    // but never a panic
    for pos in (0..bytes.len()).step_by(131) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xFF;
        let _ = BurstDetector::from_bytes(&bad);
    }

    // wrong magic
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(matches!(BurstDetector::from_bytes(&bad), Err(CodecError::BadMagic { .. })));

    // trailing garbage
    let mut bad = bytes.clone();
    bad.push(0);
    assert!(matches!(
        BurstDetector::from_bytes(&bad),
        Err(CodecError::TrailingBytes { remaining: 1 })
    ));
}

#[test]
fn format_is_stable_across_encodes() {
    let mut p = Pbe1::new(Pbe1Config { n_buf: 100, eta: 8 }).unwrap();
    for &t in &spiky(300) {
        p.update(Timestamp(t));
    }
    assert_eq!(p.to_bytes(), p.to_bytes(), "encoding must be deterministic");
    let decoded = Pbe1::from_bytes(&p.to_bytes()).unwrap();
    assert_eq!(decoded.to_bytes(), p.to_bytes(), "re-encoding must be identical");
}
