//! Tier-1 smoke of the concurrent read path: readers hammer the published
//! epochs while a writer ingests, and every sampled answer must equal a
//! fresh same-prefix rebuild. This is the scaled-down always-on cousin of
//! the full harness in `crates/core/tests/concurrent_reads.rs` (4 readers,
//! real workloads, seed sweeps) — small enough for `cargo test -q`, sharp
//! enough to catch a torn or stale read.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use bed::{
    AnyDetector, BurstDetector, BurstQueries, BurstSpan, DetectorEpochs, EventId, PbeVariant,
    QueryRequest, QueryResponse, QueryStrategy, ShardedDetector, Timestamp,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const READERS: usize = 2;
const CADENCE: u64 = 512;
const UNIVERSE: u32 = 32;
const TOTAL: u64 = 6_000;
const SAMPLE_CAP: usize = 8;

/// Same-config detector in either layout (0 = plain, n ≥ 2 = sharded).
fn build(layout: usize) -> AnyDetector {
    if layout == 0 {
        AnyDetector::Plain(Box::new(
            BurstDetector::builder()
                .universe(UNIVERSE)
                .variant(PbeVariant::pbe2(2.0))
                .accuracy(0.02, 0.1)
                .seed(11)
                .build()
                .unwrap(),
        ))
    } else {
        AnyDetector::Sharded(
            ShardedDetector::builder(layout)
                .universe(UNIVERSE)
                .variant(PbeVariant::pbe2(2.0))
                .accuracy(0.02, 0.1)
                .seed(11)
                .build()
                .unwrap(),
        )
    }
}

/// A deterministic stream with a hot event so bursty-event queries have
/// something to find.
fn stream() -> Vec<(EventId, Timestamp)> {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut els = Vec::with_capacity(TOTAL as usize);
    let mut t = 0u64;
    while els.len() < TOTAL as usize {
        t += rng.gen_range(0..2);
        let e = if (4_000..4_400).contains(&t) && rng.gen_bool(0.5) {
            EventId(7)
        } else {
            EventId(rng.gen_range(0..UNIVERSE))
        };
        els.push((e, Timestamp(t)));
    }
    els
}

struct Sampled {
    arrivals: u64,
    request: QueryRequest,
    response: QueryResponse,
}

fn reader(
    epochs: &DetectorEpochs,
    horizon: u64,
    published: &Mutex<Vec<u64>>,
    done: &AtomicBool,
    seed: u64,
) -> Vec<Sampled> {
    let view = epochs.view();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    let mut per_event: HashMap<u32, u64> = HashMap::new();
    loop {
        let event = EventId(rng.gen_range(0..UNIVERSE));
        let tau = BurstSpan::new(rng.gen_range(1..=horizon / 4)).unwrap();
        let t = Timestamp(rng.gen_range(0..=horizon));
        let request = match rng.gen_range(0..3) {
            0 => QueryRequest::Point { event, t, tau },
            1 => QueryRequest::TopK { event, k: 3, tau, horizon: t },
            _ => QueryRequest::BurstyEvents {
                t,
                theta: rng.gen_range(1.0..20.0),
                tau,
                strategy: QueryStrategy::Pruned,
            },
        };
        let response = view.query(&request).expect("requests are always valid");
        let arrivals = view.answer_watermark().arrivals;
        assert!(
            published.lock().unwrap().contains(&arrivals),
            "answer from unpublished watermark {arrivals} — torn read"
        );
        if let QueryRequest::Point { event, .. } | QueryRequest::TopK { event, .. } = request {
            let floor = per_event.entry(event.0).or_insert(0);
            assert!(arrivals >= *floor, "event {} went back in time", event.0);
            *floor = arrivals;
        }
        if samples.len() < SAMPLE_CAP {
            samples.push(Sampled { arrivals, request, response });
        }
        if done.load(Ordering::Acquire) {
            assert_eq!(view.refresh_latest().arrivals, TOTAL, "stale past the final publish");
            break;
        }
    }
    samples
}

fn smoke(layout: usize) {
    let els = stream();
    let horizon = els.last().unwrap().1 .0.max(8);
    let mut det = build(layout);
    let epochs = DetectorEpochs::new(&det);
    let published = Mutex::new(vec![0u64]);
    let done = AtomicBool::new(false);

    let per_reader: Vec<Vec<Sampled>> = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut last_pub = 0u64;
            for chunk in els.chunks(129) {
                for &(e, t) in chunk {
                    det.ingest(e, t).unwrap();
                }
                let arrivals = det.arrivals();
                if arrivals - last_pub >= CADENCE {
                    // Record before publishing, so any generation a reader
                    // can observe is already in the published set.
                    published.lock().unwrap().push(arrivals);
                    epochs.publish(&det);
                    last_pub = arrivals;
                }
            }
            published.lock().unwrap().push(det.arrivals());
            epochs.publish(&det);
            done.store(true, Ordering::Release);
        });
        let readers: Vec<_> = (0..READERS)
            .map(|i| {
                let (epochs, published, done) = (&epochs, &published, &done);
                scope.spawn(move || reader(epochs, horizon, published, done, 100 + i as u64))
            })
            .collect();
        readers.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every sampled answer equals a fresh rebuild of its watermark prefix.
    let mut oracles: HashMap<u64, AnyDetector> = HashMap::new();
    let mut verified = 0usize;
    for s in per_reader.into_iter().flatten() {
        let oracle = oracles.entry(s.arrivals).or_insert_with(|| {
            let mut det = build(layout);
            for &(e, t) in &els[..s.arrivals as usize] {
                det.ingest(e, t).unwrap();
            }
            det.finalize();
            det
        });
        assert_eq!(
            s.response,
            oracle.queries().query(&s.request).unwrap(),
            "diverged from rebuild at arrivals={} for {:?}",
            s.arrivals,
            s.request
        );
        verified += 1;
    }
    assert!(verified > 0, "readers sampled nothing — vacuous run");
}

#[test]
fn plain_layout_concurrent_reads_smoke() {
    smoke(0);
}

#[test]
fn sharded_layout_concurrent_reads_smoke() {
    smoke(2);
}
