//! Integration tests for the single-event fast path across the facade.

use bed::pbe::CurveSketch;
use bed::stream::curve::FrequencyCurve;
use bed::stream::SingleEventStream;
use bed::{BurstDetector, BurstSpan, EventId, PbeVariant, Timestamp};

/// A spiky test stream with three bursts of increasing size.
fn spiky_stream() -> Vec<u64> {
    let mut ts = Vec::new();
    for t in 0..10_000u64 {
        if t % 37 == 0 {
            ts.push(t); // background
        }
    }
    for (i, &start) in [2_000u64, 5_000, 8_000].iter().enumerate() {
        let reps = (i + 1) * 4;
        for t in start..start + 200 {
            for _ in 0..reps {
                ts.push(t);
            }
        }
    }
    ts.sort_unstable();
    ts
}

fn exact_curve(ts: &[u64]) -> FrequencyCurve {
    FrequencyCurve::from_stream(
        &SingleEventStream::from_sorted(ts.iter().map(|&t| Timestamp(t)).collect()).unwrap(),
    )
}

#[test]
fn both_variants_follow_the_exact_curve() {
    let ts = spiky_stream();
    let exact = exact_curve(&ts);
    let tau = BurstSpan::new(300).unwrap();
    for variant in [PbeVariant::pbe1(128), PbeVariant::pbe2(4.0)] {
        let mut det = BurstDetector::builder().single_event().variant(variant).build().unwrap();
        for &t in &ts {
            det.ingest_single(Timestamp(t)).unwrap();
        }
        det.finalize();
        // the three bursts must rank correctly by estimated burstiness
        let b1 = det.point_query(EventId(0), Timestamp(2_199), tau);
        let b2 = det.point_query(EventId(0), Timestamp(5_199), tau);
        let b3 = det.point_query(EventId(0), Timestamp(8_199), tau);
        assert!(b1 < b2 && b2 < b3, "{variant:?}: {b1} {b2} {b3}");
        // and be close to the truth at each peak
        for (t, est) in [(2_199u64, b1), (5_199, b2), (8_199, b3)] {
            let truth = exact.burstiness(Timestamp(t), tau) as f64;
            assert!(
                (est - truth).abs() <= truth.abs() * 0.1 + 40.0,
                "{variant:?} at {t}: {est} vs {truth}"
            );
        }
    }
}

#[test]
fn facade_matches_raw_pbe() {
    // The detector's single-event mode must be a thin wrapper: same numbers
    // as driving the PBE directly.
    let ts = spiky_stream();
    let mut det = BurstDetector::builder()
        .single_event()
        .variant(PbeVariant::Pbe2 { gamma: 4.0, max_vertices: 64 })
        .build()
        .unwrap();
    let mut raw =
        bed::pbe::Pbe2::new(bed::pbe::Pbe2Config { gamma: 4.0, max_vertices: 64 }).unwrap();
    for &t in &ts {
        det.ingest_single(Timestamp(t)).unwrap();
        raw.update(Timestamp(t));
    }
    det.finalize();
    raw.finalize();
    let tau = BurstSpan::new(500).unwrap();
    for t in (0..10_000u64).step_by(321) {
        assert_eq!(
            det.point_query(EventId(0), Timestamp(t), tau),
            raw.estimate_burstiness(Timestamp(t), tau),
            "t={t}"
        );
    }
    assert_eq!(det.size_bytes(), raw.size_bytes());
}

#[test]
fn bursty_times_cover_all_three_bursts() {
    let ts = spiky_stream();
    let mut det =
        BurstDetector::builder().single_event().variant(PbeVariant::pbe1(256)).build().unwrap();
    for &t in &ts {
        det.ingest_single(Timestamp(t)).unwrap();
    }
    det.finalize();
    let tau = BurstSpan::new(300).unwrap();
    let times = det.bursty_times(EventId(0), 500.0, tau, Timestamp(10_000));
    for window in [2_000u64, 5_000, 8_000] {
        assert!(
            times.iter().any(|&(t, _)| (window..window + 600).contains(&t.ticks())),
            "burst at {window} not reported: {times:?}"
        );
    }
}

#[test]
fn error_capped_dp_exposed_through_pbe_crate() {
    // The "hard cap on the error instead of a space constraint" mode of
    // Section III-A, exercised end-to-end from the facade's re-exports.
    let ts = spiky_stream();
    let exact = exact_curve(&ts);
    let generous = bed::pbe::pbe1::dp::solve_error_capped(exact.corners(), 1_000_000);
    let strict = bed::pbe::pbe1::dp::solve_error_capped(exact.corners(), 1_000);
    assert!(generous.chosen.len() < strict.chosen.len());
    assert!(generous.cost <= 1_000_000);
    assert!(strict.cost <= 1_000);
}
