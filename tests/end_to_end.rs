//! End-to-end integration: workload generator → detector → queries,
//! validated against the exact baseline.

use bed::stream::ExactBaseline;
use bed::workload::olympics::{self, OlympicsConfig};
use bed::workload::truth;
use bed::{BurstDetector, BurstSpan, PbeVariant, QueryStrategy, Timestamp};

fn build(
    variant: PbeVariant,
    seed: u64,
) -> (BurstDetector, ExactBaseline, olympics::OlympicsStream) {
    let data = olympics::generate(OlympicsConfig { total_elements: 60_000, seed: 99 });
    let baseline = ExactBaseline::from_stream(&data.stream);
    let mut det = BurstDetector::builder()
        .universe(data.universe)
        .variant(variant)
        .accuracy(0.003, 0.02)
        .seed(seed)
        .build()
        .unwrap();
    for el in data.stream.iter() {
        det.ingest(el.event, el.ts).unwrap();
    }
    det.finalize();
    (det, baseline, data)
}

#[test]
fn point_queries_track_ground_truth() {
    for variant in [PbeVariant::pbe1(64), PbeVariant::pbe2(8.0)] {
        let (det, baseline, data) = build(variant, 5);
        let tau = BurstSpan::DAY_SECONDS;
        let events = data.stream.distinct_events();
        let queries = truth::random_point_queries(
            &events,
            Timestamp(olympics::OLYMPICS_HORIZON_SECS),
            200,
            17,
        );
        let err =
            truth::mean_abs_error(&baseline, &queries, tau, |e, t| det.point_query(e, t, tau));
        // Soccer burstiness peaks in the tens of thousands at this scale;
        // a mean error beyond 1% of the peak would be broken.
        let peak = events
            .iter()
            .map(|&e| baseline.point_query(e, Timestamp(21 * 86_400), tau))
            .max()
            .unwrap();
        assert!(peak > 1_000, "fixture lost its burst (peak {peak})");
        assert!(err < peak as f64 * 0.01, "{variant:?}: mean error {err} vs peak {peak}");
    }
}

#[test]
fn bursty_event_query_has_high_precision_and_recall() {
    let (det, baseline, _) = build(PbeVariant::pbe2(4.0), 9);
    let tau = BurstSpan::DAY_SECONDS;
    let theta = 500i64;
    let days = [6u64, 9, 12, 15, 18, 21];
    // Events sitting right at θ flip on sketch noise, so measure with soft
    // margins: a hit is "correct" if its exact burstiness reaches θ/2, and a
    // miss only counts against recall if the event clearly bursts (≥ 2θ).
    let mut soft_correct = 0usize;
    let mut reported_total = 0usize;
    let mut clear_found = 0usize;
    let mut clear_total = 0usize;
    for &d in &days {
        let t = Timestamp(d * 86_400);
        let (hits, _) =
            det.bursty_events_with(t, theta as f64, tau, QueryStrategy::Pruned).unwrap();
        for h in &hits {
            reported_total += 1;
            if baseline.point_query(h.event, t, tau) >= theta / 2 {
                soft_correct += 1;
            }
        }
        for (e, _) in baseline.bursty_events(t, 2 * theta, tau) {
            clear_total += 1;
            if hits.iter().any(|h| h.event == e) {
                clear_found += 1;
            }
        }
    }
    assert!(reported_total > 0 && clear_total > 0, "degenerate fixture");
    let soft_precision = soft_correct as f64 / reported_total as f64;
    let clear_recall = clear_found as f64 / clear_total as f64;
    assert!(soft_precision >= 0.8, "soft precision {soft_precision}");
    assert!(clear_recall >= 0.8, "clear recall {clear_recall}");

    // The strict metrics still get computed (they drive fig12); just assert
    // they are non-degenerate here.
    let t = Timestamp(21 * 86_400);
    let (hits, _) = det.bursty_events_with(t, theta as f64, tau, QueryStrategy::Pruned).unwrap();
    let reported: Vec<_> = hits.iter().map(|h| h.event).collect();
    let pr = truth::precision_recall(&baseline, &reported, t, theta, tau);
    assert!(pr.precision > 0.5 && pr.recall > 0.5, "{pr:?}");
}

#[test]
fn bursty_times_recover_known_burst_windows() {
    let (det, baseline, data) = build(PbeVariant::pbe2(4.0), 3);
    let tau = BurstSpan::DAY_SECONDS;
    let horizon = Timestamp(olympics::OLYMPICS_HORIZON_SECS);
    let theta = 1_000.0;
    let times = det.bursty_times(data.soccer, theta, tau, horizon);
    assert!(!times.is_empty(), "soccer has strong bursts at this θ");
    // every reported instant must be genuinely bursty (within sketch error)
    for &(t, est) in &times {
        let truth = baseline.point_query(data.soccer, t, tau) as f64;
        assert!(
            truth >= theta * 0.3,
            "reported instant {t} has exact burstiness {truth} (estimate {est})"
        );
    }
    // the final (day ~21) must be covered
    assert!(
        times.iter().any(|&(t, _)| (20 * 86_400..23 * 86_400).contains(&t.ticks())),
        "final's burst window missed"
    );
}

#[test]
fn detector_is_reproducible_and_seed_sensitive() {
    let (a, _, data) = build(PbeVariant::pbe2(8.0), 42);
    let (b, _, _) = build(PbeVariant::pbe2(8.0), 42);
    let (c, _, _) = build(PbeVariant::pbe2(8.0), 43);
    let tau = BurstSpan::DAY_SECONDS;
    let t = Timestamp(12 * 86_400);
    assert_eq!(a.point_query(data.soccer, t, tau), b.point_query(data.soccer, t, tau));
    // different hash seeds land events in different cells; estimates for a
    // minor event will almost surely differ
    let minor = bed::EventId(500);
    let differs = (0..10u64).any(|d| {
        let t = Timestamp(d * 86_400 + 1);
        a.point_query(minor, t, tau) != c.point_query(minor, t, tau)
    });
    assert!(differs, "seed change had no observable effect");
}

#[test]
fn sketch_is_much_smaller_than_exact_store() {
    let (det, baseline, _) = build(PbeVariant::pbe2(16.0), 1);
    assert!(
        det.size_bytes() * 2 < baseline.size_bytes(),
        "sketch {} vs exact {}",
        det.size_bytes(),
        baseline.size_bytes()
    );
}
