//! Full-system integration on the uspolitics-like workload: generator →
//! detector → national-moment detection, monitor semantics, and
//! crafted-bytes decode hardening.

use bed::stream::Codec;
use bed::workload::politics::{self, Party, PoliticsConfig};
use bed::{BurstDetector, BurstMonitor, BurstSpan, PbeVariant, QueryStrategy, Timestamp};

fn build_politics() -> (BurstDetector, politics::PoliticsStream) {
    let data = politics::generate(PoliticsConfig { total_elements: 120_000, skew: 1.0, seed: 6 });
    let mut det = BurstDetector::builder()
        .universe(data.universe)
        .variant(PbeVariant::pbe2(4.0))
        .accuracy(0.005, 0.02)
        .seed(11)
        .build()
        .unwrap();
    for el in data.stream.iter() {
        det.ingest(el.event, el.ts).unwrap();
    }
    det.finalize();
    (det, data)
}

#[test]
fn national_moments_dominate_their_party() {
    let (det, data) = build_politics();
    let tau = BurstSpan::DAY_SECONDS;
    // RNC day (48): total Republican burstiness among bursty events should
    // dwarf the Democrat total at the same instant.
    let t = Timestamp(48 * 86_400 + 43_200);
    let (hits, _) = det.bursty_events_with(t, 20.0, tau, QueryStrategy::Pruned).unwrap();
    let mut dem = 0.0;
    let mut rep = 0.0;
    for h in &hits {
        match data.party_of(h.event) {
            Party::Democrat => dem += h.burstiness,
            Party::Republican => rep += h.burstiness,
        }
    }
    assert!(rep > dem * 2.0, "RNC day: rep={rep} dem={dem}");

    // DNC day (55): the reverse.
    let t = Timestamp(55 * 86_400 + 43_200);
    let (hits, _) = det.bursty_events_with(t, 20.0, tau, QueryStrategy::Pruned).unwrap();
    let mut dem = 0.0;
    let mut rep = 0.0;
    for h in &hits {
        match data.party_of(h.event) {
            Party::Democrat => dem += h.burstiness,
            Party::Republican => rep += h.burstiness,
        }
    }
    // idiosyncratic spikes of the other party add noise at this scale, so
    // require a clear lead rather than the RNC's 2× margin
    assert!(dem > rep * 1.2, "DNC day: rep={rep} dem={dem}");
}

#[test]
fn series_api_recovers_the_campaign_shape() {
    let (det, data) = build_politics();
    let tau = BurstSpan::DAY_SECONDS;
    // the most popular event (rank 0) has several spikes; its series over
    // the horizon must have both quiet days (≈0) and spike days (≫0)
    let range = bed::TimeRange {
        start: Timestamp(86_400),
        end: Timestamp(politics::POLITICS_HORIZON_SECS - 1),
    };
    let series = det.burstiness_series(bed::EventId(0), tau, range, 86_400);
    let max = series.iter().map(|&(_, b)| b).fold(f64::MIN, f64::max);
    let quiet_days = series.iter().filter(|&&(_, b)| b.abs() < max / 50.0).count();
    assert!(max > 100.0, "no spike found (max {max})");
    assert!(quiet_days > series.len() / 4, "campaign should have quiet days");
    let _ = data;
}

#[test]
fn monitor_over_politics_prefix() {
    let data = politics::generate(PoliticsConfig { total_elements: 60_000, skew: 1.0, seed: 6 });
    let det = BurstDetector::builder()
        .universe(data.universe)
        .variant(PbeVariant::pbe2(4.0))
        .accuracy(0.005, 0.02)
        .seed(11)
        .build()
        .unwrap();
    let mut mon = BurstMonitor::new(det, BurstSpan::DAY_SECONDS);
    // ingest up to just past the RNC
    let cutoff = Timestamp(49 * 86_400);
    for el in data.stream.iter().filter(|el| el.ts <= cutoff) {
        mon.ingest(el.event, el.ts).unwrap();
    }
    let top = mon.top_k_now(5, 10.0).unwrap();
    assert!(!top.is_empty(), "the convention should be bursting 'now'");
    // the top burster 'now' leans Republican
    assert_eq!(data.party_of(top[0].event), Party::Republican, "{top:?}");
}

#[test]
fn crafted_backend_config_mismatch_is_rejected() {
    // Encode a single-event detector, then flip its config byte to claim a
    // universe: the decoder must detect the backend/config mismatch.
    let mut det = BurstDetector::builder().single_event().build().unwrap();
    for t in 0..50u64 {
        det.ingest_single(Timestamp(t)).unwrap();
    }
    det.finalize();
    let bytes = det.to_bytes();

    // Locate the universe-flag byte: magic(4) + version(2) + variant
    // (tag 1 + gamma 8 + max_vertices 8) + epsilon 8 + delta 8 = offset 39.
    let flag_offset = 4 + 2 + 17 + 16;
    assert_eq!(bytes[flag_offset], 0, "expected single-event flag");
    let mut bad = bytes.clone();
    bad[flag_offset] = 1; // now claims Some(universe) but provides no u32
    assert!(BurstDetector::from_bytes(&bad).is_err());

    // Flip the hierarchy flag instead: config says hierarchical, backend
    // bytes still encode a single cell → mismatch.
    let hier_offset = flag_offset + 1; // no universe u32 present when flag=0
    let mut bad = bytes.clone();
    bad[hier_offset] = 2; // invalid flag value
    assert!(BurstDetector::from_bytes(&bad).is_err());
}
